"""Probe protocol and trace session: structured simulator observability.

A :class:`TraceSession` attaches one :class:`SMProbe` to every SM of a
:class:`~repro.simt.gpu.GPU` (pass ``trace=session`` to the constructor,
or ``probes=...`` to :func:`repro.api.simulate`). The simulator emits
structured events into the probes from its issue path, warp scheduler,
spawn unit (LUT / partial-warp pool / new-warp FIFO), and DRAM coalescer;
the probes accumulate them into per-interval numpy buffers
(:mod:`repro.obs.interval`) and a bounded event list for timeline export
(:mod:`repro.obs.export`).

Contracts (enforced by ``tests/obs/``):

- **Zero overhead when off.** Every hook call site in the simulator is
  guarded by ``if probe is not None``; with no session attached the hot
  path executes exactly the pre-instrumentation instruction sequence and
  all ``RunStats`` are bit-identical to an uninstrumented run.
- **Observe, never steer.** Probes read simulator state but never mutate
  it, so attaching a session cannot change any reported statistic.
- **Exact == fast.** During a fast-forwarded span no SM issues, so warp
  sets, wait kinds, spawn-pool depths, and stall causes are constant;
  span credits (``on_*_span``, value x span length) therefore equal
  per-cycle sampling, and both clock modes produce identical interval
  metrics and events.

The stall-attribution pass splits the aggregate ``stall``/``idle``
counters by cause:

- stall (issue port blocked): ``bank_conflict`` (on-chip memory) vs.
  ``spawn_conflict`` (spawn-memory metadata stores, Fig. 9);
- idle (no warp ready): ``dram_pending`` (some warp awaits DRAM) >
  ``issue_port`` (all waits are pipeline latency) > ``barrier`` (every
  warp blocked at a bar) > ``drained`` (no resident warps — admission
  starved), prioritized in that order.
"""

from __future__ import annotations

import heapq
from typing import Protocol

import numpy as np

from repro.errors import ConfigError
from repro.obs.constants import (
    DEFAULT_INTERVAL,
    IDLE_BARRIER,
    IDLE_CAUSES,
    IDLE_DRAINED,
    IDLE_DRAM_PENDING,
    IDLE_ISSUE_PORT,
    STALL_BANK_CONFLICT,
    STALL_CAUSES,
    STALL_SPAWN_CONFLICT,
    WAIT_DRAM,
    WAIT_PIPE,
)
from repro.obs.interval import IntervalBuffer, summed
from repro.simt.executor import ISSUE_KINDS
from repro.simt.stats import NUM_W_BUCKETS, _lanes_per_bucket, w_labels

#: Per-interval metric columns accumulated by every SM probe. The first
#: NUM_W_BUCKETS columns are the W-bucket issue histogram (paper Figs.
#: 3/7/9); the ``*_cycles`` columns are cycle-weighted sums (divide by the
#: interval length for a mean depth/occupancy).
INTERVAL_COLUMNS = (
    tuple(f"w{bucket}" for bucket in range(NUM_W_BUCKETS))
    + ("issued", "committed", "idle", "stall")
    + tuple(f"kind_{kind}" for kind in ISSUE_KINDS)
    + tuple(f"stall_{cause}" for cause in STALL_CAUSES)
    + tuple(f"idle_{cause}" for cause in IDLE_CAUSES)
    + ("occupancy_warp_cycles", "pool_thread_cycles", "fifo_warp_cycles",
       "threads_spawned", "warps_formed", "warps_flushed",
       "warps_launched", "warps_retired"))

#: Machine-level DRAM coalescer columns (the partition is shared by all
#: SMs, so segment counts live on the session, not a per-SM probe).
DRAM_COLUMNS = ("read_segments", "write_segments")


class Probe(Protocol):
    """What the simulator expects from an attached per-SM probe.

    ``SM.step`` drives ``on_cycle``/``on_idle``/``on_stall`` (per stepped
    cycle) and ``SM.credit_skipped`` the ``*_span`` variants (per
    fast-forwarded span); the issue path drives ``on_issue``/``on_spawn``
    and the admission/retirement paths ``on_warp_launch``/
    ``on_warp_retire``. The spawn unit calls ``on_warp_formed``/
    ``on_partial_flush`` when its FIFO/pool change.
    """

    def on_cycle(self, cycle: int, occupancy: int, pool_threads: int,
                 fifo_warps: int) -> None: ...

    def on_cycle_span(self, start: int, stop: int, occupancy: int,
                      pool_threads: int, fifo_warps: int) -> None: ...

    def on_issue(self, cycle: int, active: int, kind: str) -> None: ...

    def on_idle(self, cycle: int, cause: str) -> None: ...

    def on_stall(self, cycle: int, cause: str) -> None: ...

    def on_idle_span(self, start: int, stop: int, cause: str) -> None: ...

    def on_stall_span(self, start: int, stop: int, cause: str) -> None: ...

    def on_spawn(self, cycle: int, kernel_name: str, threads: int) -> None: ...

    def on_warp_formed(self, kernel_name: str, threads: int) -> None: ...

    def on_partial_flush(self, kernel_name: str, threads: int) -> None: ...

    def on_warp_launch(self, cycle: int, warp) -> None: ...

    def on_warp_retire(self, cycle: int, warp) -> None: ...


class SMProbe:
    """Interval accumulation plus event emission for one SM.

    Events are compact tuples (see :mod:`repro.obs.export` for the
    schema); warp lifetimes are assembled at retirement so each warp costs
    one event, and chrome-trace rows (``tid``) reuse freed warp slots via
    a min-heap so the timeline mirrors slot occupancy.
    """

    def __init__(self, session: "TraceSession", sm_id: int, warp_size: int):
        self.session = session
        self.sm_id = sm_id
        self.intervals = IntervalBuffer(session.interval, INTERVAL_COLUMNS)
        self.events: list[tuple] = []
        self.cycle = 0
        self._per_bucket = _lanes_per_bucket(warp_size)
        col = self.intervals.col
        self._col_issued = col["issued"]
        self._col_committed = col["committed"]
        self._col_idle = col["idle"]
        self._col_stall = col["stall"]
        self._col_occupancy = col["occupancy_warp_cycles"]
        self._col_pool = col["pool_thread_cycles"]
        self._col_fifo = col["fifo_warp_cycles"]
        self._col_spawned = col["threads_spawned"]
        self._col_formed = col["warps_formed"]
        self._col_flushed = col["warps_flushed"]
        self._col_launched = col["warps_launched"]
        self._col_retired = col["warps_retired"]
        self._kind_col = {kind: col[f"kind_{kind}"] for kind in ISSUE_KINDS}
        self._stall_col = {cause: col[f"stall_{cause}"]
                           for cause in STALL_CAUSES}
        self._idle_col = {cause: col[f"idle_{cause}"]
                          for cause in IDLE_CAUSES}
        self._open: dict[int, tuple[int, int, str, bool, int]] = {}
        self._free_slots: list[int] = []
        self._next_slot = 0

    # -- per-cycle sampling --------------------------------------------------

    def on_cycle(self, cycle: int, occupancy: int, pool_threads: int,
                 fifo_warps: int) -> None:
        self.cycle = cycle
        row = self.intervals.row_for(cycle)
        data = self.intervals.data
        data[row, self._col_occupancy] += occupancy
        if pool_threads:
            data[row, self._col_pool] += pool_threads
        if fifo_warps:
            data[row, self._col_fifo] += fifo_warps

    def on_cycle_span(self, start: int, stop: int, occupancy: int,
                      pool_threads: int, fifo_warps: int) -> None:
        self.cycle = stop - 1
        intervals = self.intervals
        intervals.add_span(start, stop, self._col_occupancy, occupancy)
        if pool_threads:
            intervals.add_span(start, stop, self._col_pool, pool_threads)
        if fifo_warps:
            intervals.add_span(start, stop, self._col_fifo, fifo_warps)

    def on_issue(self, cycle: int, active: int, kind: str) -> None:
        bucket = (active - 1) // self._per_bucket
        if bucket >= NUM_W_BUCKETS:
            bucket = NUM_W_BUCKETS - 1
        row = self.intervals.row_for(cycle)
        data = self.intervals.data
        data[row, bucket] += 1  # W columns occupy indices 0..NUM_W_BUCKETS-1
        data[row, self._col_issued] += 1
        data[row, self._col_committed] += active
        data[row, self._kind_col[kind]] += 1

    def on_idle(self, cycle: int, cause: str) -> None:
        row = self.intervals.row_for(cycle)
        data = self.intervals.data
        data[row, self._col_idle] += 1
        data[row, self._idle_col[cause]] += 1

    def on_stall(self, cycle: int, cause: str) -> None:
        row = self.intervals.row_for(cycle)
        data = self.intervals.data
        data[row, self._col_stall] += 1
        data[row, self._stall_col[cause]] += 1

    def on_idle_span(self, start: int, stop: int, cause: str) -> None:
        self.intervals.add_span(start, stop, self._col_idle)
        self.intervals.add_span(start, stop, self._idle_col[cause])

    def on_stall_span(self, start: int, stop: int, cause: str) -> None:
        self.intervals.add_span(start, stop, self._col_stall)
        self.intervals.add_span(start, stop, self._stall_col[cause])

    # -- structured events ---------------------------------------------------

    def on_spawn(self, cycle: int, kernel_name: str, threads: int) -> None:
        self.intervals.add(cycle, self._col_spawned, threads)
        if self.session.admit_event():
            self.events.append(("spawn", self.sm_id, cycle, kernel_name,
                                threads))

    def on_warp_formed(self, kernel_name: str, threads: int) -> None:
        self.intervals.add(self.cycle, self._col_formed)
        if self.session.admit_event():
            self.events.append(("formed", self.sm_id, self.cycle,
                                kernel_name, threads))

    def on_partial_flush(self, kernel_name: str, threads: int) -> None:
        self.intervals.add(self.cycle, self._col_flushed)
        if self.session.admit_event():
            self.events.append(("flush", self.sm_id, self.cycle,
                                kernel_name, threads))

    def on_warp_launch(self, cycle: int, warp) -> None:
        self.intervals.add(cycle, self._col_launched)
        if self._free_slots:
            slot = heapq.heappop(self._free_slots)
        else:
            slot = self._next_slot
            self._next_slot += 1
        self._open[warp.warp_id] = (slot, cycle, warp.kernel_name,
                                    warp.is_dynamic,
                                    int(warp.active_at_launch.sum()))

    def on_warp_retire(self, cycle: int, warp) -> None:
        self.intervals.add(cycle, self._col_retired)
        info = self._open.pop(warp.warp_id, None)
        if info is None:
            return
        slot, start, kernel, dynamic, threads = info
        heapq.heappush(self._free_slots, slot)
        if self.session.admit_event():
            self.events.append(("warp", self.sm_id, slot, start, cycle,
                                warp.warp_id, kernel, dynamic, threads))

    def finalize(self, cycles: int) -> None:
        """Close out warps still in flight at the cycle budget."""
        for warp_id in sorted(self._open):
            slot, start, kernel, dynamic, threads = self._open[warp_id]
            if self.session.admit_event():
                self.events.append(("warp", self.sm_id, slot, start, cycles,
                                    warp_id, kernel, dynamic, threads))
        self._open.clear()


class TraceSession:
    """Configuration and sink for one traced GPU run.

    One session observes exactly one run — ``GPU.__init__`` claims it and
    a second run would silently interleave metrics, so reuse raises.
    """

    def __init__(self, interval: int = DEFAULT_INTERVAL, *,
                 events: bool = True, max_events: int = 200_000):
        if interval <= 0:
            raise ConfigError("trace interval must be positive")
        self.interval = int(interval)
        self.events_enabled = events
        self.max_events = int(max_events)
        self.sms: list[SMProbe] = []
        self.dram = IntervalBuffer(self.interval, DRAM_COLUMNS)
        self.dropped_events = 0
        self._admitted = 0
        self.warp_size: int | None = None
        self.num_sms = 0
        self.clock_ghz = 0.0
        self.cycles = 0
        self._configured = False
        self._finalized = False

    # -- wiring (driven by the GPU) ------------------------------------------

    def configure(self, config) -> None:
        if self._configured:
            raise ConfigError(
                "a TraceSession observes exactly one run; create a fresh "
                "session (or pass probes=True) for each simulation")
        self._configured = True
        self.warp_size = config.warp_size
        self.num_sms = config.num_sms
        self.clock_ghz = config.clock_ghz

    def sm_probe(self, sm_id: int) -> SMProbe:
        probe = SMProbe(self, sm_id, self.warp_size)
        self.sms.append(probe)
        return probe

    def admit_event(self) -> bool:
        """Reserve one event slot; count drops past the cap."""
        if not self.events_enabled:
            return False
        if self._admitted >= self.max_events:
            self.dropped_events += 1
            return False
        self._admitted += 1
        return True

    def on_dram_access(self, cycle: int, segments: int,
                       is_store: bool) -> None:
        # DRAM_COLUMNS order is (read, write), so the store flag is the
        # column index.
        self.dram.add(cycle, int(is_store), segments)

    def finalize(self, cycles: int) -> None:
        if self._finalized:
            return
        self._finalized = True
        self.cycles = cycles
        for probe in self.sms:
            probe.finalize(cycles)

    # -- analysis surface ----------------------------------------------------

    @property
    def num_events(self) -> int:
        return sum(len(probe.events) for probe in self.sms)

    def machine_intervals(self) -> np.ndarray:
        """Per-interval metrics summed over all SMs (rows x columns)."""
        return summed([probe.intervals for probe in self.sms],
                      INTERVAL_COLUMNS, self.interval)

    def interval_rows(self) -> list[dict]:
        """One dict per interval: machine metrics plus DRAM segments."""
        machine = self.machine_intervals()
        dram = self.dram.trimmed()
        rows = []
        for index in range(max(machine.shape[0], dram.shape[0])):
            row = {"interval": index, "start_cycle": index * self.interval}
            for column, name in enumerate(INTERVAL_COLUMNS):
                row[name] = (int(machine[index, column])
                             if index < machine.shape[0] else 0)
            for column, name in enumerate(DRAM_COLUMNS):
                row[f"dram_{name}"] = (int(dram[index, column])
                                       if index < dram.shape[0] else 0)
            rows.append(row)
        return rows

    def stall_attribution(self) -> dict:
        """Whole-run idle/stall cycles split by cause, summed over SMs.

        The causes partition the aggregate counters exactly:
        ``sum(stall causes) == stall_cycles`` and
        ``sum(idle causes) == idle_cycles``.
        """
        totals: dict[str, int] = {"idle_cycles": 0, "stall_cycles": 0}
        for cause in STALL_CAUSES:
            totals[cause] = 0
        for cause in IDLE_CAUSES:
            totals[cause] = 0
        for probe in self.sms:
            sums = probe.intervals.totals()
            totals["idle_cycles"] += sums["idle"]
            totals["stall_cycles"] += sums["stall"]
            for cause in STALL_CAUSES:
                totals[cause] += sums[f"stall_{cause}"]
            for cause in IDLE_CAUSES:
                totals[cause] += sums[f"idle_{cause}"]
        return totals

    def w_labels(self) -> list[str]:
        return w_labels(self.warp_size or 32)

    def summary(self) -> dict:
        machine = self.machine_intervals()
        return {
            "interval": self.interval,
            "cycles": self.cycles,
            "num_sms": self.num_sms,
            "warp_size": self.warp_size,
            "intervals": int(machine.shape[0]),
            "events": self.num_events,
            "dropped_events": self.dropped_events,
            "issued": int(machine[:, INTERVAL_COLUMNS.index("issued")].sum())
            if machine.size else 0,
        }
