"""Growable numpy ring buffers for per-interval metric accumulation.

An :class:`IntervalBuffer` is a 2-D int64 accumulator: one row per
``interval`` cycles of simulated time, one column per named metric. Two
access patterns matter:

- the per-cycle hot path increments a single element (``add``), and
- the event-driven fast-forward clock credits a whole skipped span in one
  vectorized update (``add_span``) — by construction equal to calling
  ``add`` once for every cycle of the span, so exact and fast clocks
  produce bit-identical interval metrics.

Rows grow geometrically (capacity doubles) so a run of unknown length
costs amortized O(1) per touched interval.
"""

from __future__ import annotations

import numpy as np


class IntervalBuffer:
    """Named-column, interval-indexed int64 accumulator."""

    __slots__ = ("interval", "columns", "col", "data", "used")

    def __init__(self, interval: int, columns: tuple[str, ...],
                 initial_rows: int = 64):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not columns:
            raise ValueError("at least one column is required")
        self.interval = int(interval)
        self.columns = tuple(columns)
        self.col = {name: index for index, name in enumerate(self.columns)}
        if len(self.col) != len(self.columns):
            raise ValueError("duplicate column names")
        self.data = np.zeros((max(1, initial_rows), len(self.columns)),
                             dtype=np.int64)
        self.used = 0

    def _grow(self, rows_needed: int) -> None:
        capacity = self.data.shape[0]
        if rows_needed > capacity:
            while capacity < rows_needed:
                capacity *= 2
            grown = np.zeros((capacity, len(self.columns)), dtype=np.int64)
            grown[:self.used] = self.data[:self.used]
            self.data = grown
        self.used = rows_needed

    def row_for(self, cycle: int) -> int:
        """Row index for ``cycle``, extending the high-water mark."""
        index = cycle // self.interval
        if index >= self.used:
            self._grow(index + 1)
        return index

    def add(self, cycle: int, column_index: int, amount: int = 1) -> None:
        # row_for may reallocate ``data``; resolve it before subscripting
        # (an augmented assignment evaluates its target object first).
        row = self.row_for(cycle)
        self.data[row, column_index] += amount

    def add_span(self, start: int, stop: int, column_index: int,
                 weight: int = 1) -> None:
        """Credit ``weight`` per cycle of [start, stop), split across rows.

        Equivalent to ``add(cycle, column_index, weight)`` for every cycle
        of the span, without the loop.
        """
        if stop <= start:
            return
        interval = self.interval
        first = start // interval
        last = (stop - 1) // interval
        if last >= self.used:
            self._grow(last + 1)
        data = self.data
        if first == last:
            data[first, column_index] += (stop - start) * weight
            return
        data[first:last + 1, column_index] += interval * weight
        data[first, column_index] -= (start - first * interval) * weight
        data[last, column_index] -= ((last + 1) * interval - stop) * weight

    def trimmed(self) -> np.ndarray:
        """The touched rows (a view; do not mutate)."""
        return self.data[:self.used]

    def column(self, name: str) -> np.ndarray:
        return self.trimmed()[:, self.col[name]]

    def total(self, name: str) -> int:
        return int(self.column(name).sum())

    def totals(self) -> dict[str, int]:
        sums = self.trimmed().sum(axis=0)
        return {name: int(sums[index])
                for index, name in enumerate(self.columns)}


def summed(buffers: list[IntervalBuffer],
           columns: tuple[str, ...], interval: int) -> np.ndarray:
    """Element-wise sum of buffers (rows padded to the longest one)."""
    for buffer in buffers:
        if buffer.columns != columns or buffer.interval != interval:
            raise ValueError("cannot sum buffers with different layouts")
    used = max((buffer.used for buffer in buffers), default=0)
    total = np.zeros((used, len(columns)), dtype=np.int64)
    for buffer in buffers:
        total[:buffer.used] += buffer.trimmed()
    return total
