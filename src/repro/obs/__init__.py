"""Observability: probes, interval metrics, and trace exporters.

Attach a :class:`TraceSession` to a run (``repro.api.simulate(...,
probes=...)`` or ``GPU(..., trace=session)``) to collect per-interval
W-bucket histograms, occupancy, spawn-pool depth, DRAM segment counts,
cause-split idle/stall attribution, and a bounded structured-event stream
— with zero overhead when no session is attached. See
:mod:`repro.obs.probe` for the contracts and :mod:`repro.obs.export` for
the Chrome-trace/CSV/JSON/ASCII exporters.
"""

from repro.obs.export import (
    chrome_trace,
    render_interval_plot,
    render_sweep_summary,
    write_chrome_trace,
    write_intervals_csv,
    write_intervals_json,
)
from repro.obs.interval import IntervalBuffer
from repro.obs.invariants import (
    check_cycle_partition,
    check_run,
    check_stall_attribution,
    check_thread_conservation,
)
from repro.obs.probe import (
    DEFAULT_INTERVAL,
    IDLE_CAUSES,
    INTERVAL_COLUMNS,
    STALL_CAUSES,
    Probe,
    SMProbe,
    TraceSession,
)
from repro.obs.progress import EventLog

__all__ = [
    "DEFAULT_INTERVAL",
    "EventLog",
    "IDLE_CAUSES",
    "INTERVAL_COLUMNS",
    "IntervalBuffer",
    "Probe",
    "SMProbe",
    "STALL_CAUSES",
    "TraceSession",
    "check_cycle_partition",
    "check_run",
    "check_stall_attribution",
    "check_thread_conservation",
    "chrome_trace",
    "render_interval_plot",
    "render_sweep_summary",
    "write_chrome_trace",
    "write_intervals_csv",
    "write_intervals_json",
]
