"""Exporters for trace sessions: Chrome trace, CSV/JSON, ASCII plots.

Three consumers of one :class:`~repro.obs.probe.TraceSession`:

- :func:`write_chrome_trace` — Chrome ``trace_event`` JSON (load in
  ``chrome://tracing`` or Perfetto): one process per SM, one track per
  warp slot, complete ("X") events for warp lifetimes, instant ("i")
  events for spawn/formation/flush, and counter ("C") tracks for
  occupancy, spawn-pool depth, and DRAM segments per interval;
- :func:`write_intervals_csv` / :func:`write_intervals_json` — the raw
  per-interval metric table for plotting;
- :func:`render_interval_plot` — an AerialVision-style stacked terminal
  plot of the per-interval cycle breakdown (W buckets + idle + stall),
  the probe-based analogue of
  :func:`repro.analysis.divergence.render_breakdown`.

Timestamps are in *cycles* (recorded as microseconds in the trace file so
viewers render them; ``otherData.ts_unit`` documents the convention).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.obs.probe import INTERVAL_COLUMNS, TraceSession
from repro.simt.stats import NUM_W_BUCKETS

#: Glyph ramp shared with the divergence breakdown renderer.
_SHADES = " .:-=+*#%@"

#: Counter tracks exported per interval (name -> column expression).
_COUNTER_TRACKS = ("occupancy_warp_cycles", "pool_thread_cycles",
                   "issued", "idle", "stall")


def chrome_trace(session: TraceSession) -> dict:
    """Build the ``trace_event`` document for a finished session."""
    events: list[dict] = []
    for probe in session.sms:
        events.append({"ph": "M", "pid": probe.sm_id, "tid": 0,
                       "name": "process_name",
                       "args": {"name": f"SM {probe.sm_id}"}})
        for event in probe.events:
            if event[0] == "warp":
                _, sm_id, slot, start, stop, warp_id, kernel, dynamic, \
                    threads = event
                events.append({
                    "ph": "X", "pid": sm_id, "tid": slot,
                    "ts": start, "dur": max(1, stop - start),
                    "cat": "dynamic" if dynamic else "launch",
                    "name": f"{kernel or 'launch'}#{warp_id}",
                    "args": {"warp_id": warp_id, "threads": threads,
                             "dynamic": dynamic},
                })
            else:
                tag, sm_id, cycle, kernel, threads = event
                events.append({
                    "ph": "i", "s": "t", "pid": sm_id, "tid": 0,
                    "ts": cycle, "cat": tag,
                    "name": f"{tag} {kernel} x{threads}",
                    "args": {"threads": threads},
                })
    machine_pid = session.num_sms
    events.append({"ph": "M", "pid": machine_pid, "tid": 0,
                   "name": "process_name", "args": {"name": "machine"}})
    machine = session.machine_intervals()
    dram = session.dram.trimmed()
    for name in _COUNTER_TRACKS:
        column = INTERVAL_COLUMNS.index(name)
        for index in range(machine.shape[0]):
            events.append({"ph": "C", "pid": machine_pid, "tid": 0,
                           "ts": index * session.interval, "name": name,
                           "args": {name: int(machine[index, column])}})
    for index in range(dram.shape[0]):
        events.append({"ph": "C", "pid": machine_pid, "tid": 0,
                       "ts": index * session.interval,
                       "name": "dram_segments",
                       "args": {"read": int(dram[index, 0]),
                                "write": int(dram[index, 1])}})
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "ts_unit": "cycle",
            "clock_ghz": session.clock_ghz,
            "interval": session.interval,
            "cycles": session.cycles,
            "dropped_events": session.dropped_events,
        },
    }


def write_chrome_trace(path, session: TraceSession) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(chrome_trace(session)) + "\n")
    return path


def write_intervals_csv(path, session: TraceSession) -> pathlib.Path:
    from repro.analysis.export import write_rows_csv

    return write_rows_csv(path, session.interval_rows())


def write_intervals_json(path, session: TraceSession,
                         stats=None) -> pathlib.Path:
    """Interval table + attribution as JSON; embeds the run's versioned
    ``RunStats.to_dict()`` when ``stats`` is given."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "schema": "repro-intervals/1",
        "summary": session.summary(),
        "attribution": session.stall_attribution(),
        "intervals": session.interval_rows(),
    }
    if stats is not None:
        document["stats"] = stats.to_dict()
    path.write_text(json.dumps(document, sort_keys=True) + "\n")
    return path


def render_sweep_summary(results) -> str:
    """Completion/failure summary for a finished sweep.

    Duck-typed over :class:`repro.harness.sweep.SweepResults` (iterating
    the completed :class:`~repro.harness.sweep.JobResult` rows and reading
    ``failures``) so this module needs no harness import. One headline
    line, then one line per quarantined or unverified job — the CLI prints
    it to stderr whenever a sweep finishes degraded.
    """
    completed = list(results)
    failures = list(getattr(results, "failures", ()))
    unverified = [result for result in completed if not result.verified]
    total = len(completed) + len(failures)
    lines = [f"sweep summary: {len(completed)}/{total} jobs completed, "
             f"{len(failures)} failed, {len(unverified)} unverified, "
             f"{sum(r.wall_seconds for r in completed):.2f}s total job time"]
    for failure in failures:
        lines.append(f"  {failure.describe()}")
    for result in unverified:
        lines.append(f"  {result.job.describe()}  UNVERIFIED "
                     f"(results do not match the reference trace)")
    return "\n".join(lines)


def render_interval_plot(session: TraceSession, *,
                         max_intervals: int = 60) -> str:
    """Stacked per-interval cycle breakdown: W buckets, idle, stall.

    One row per category, one column per interval; darker glyphs mean the
    category consumed a larger share of that interval's SM cycles.
    """
    machine = session.machine_intervals().astype(np.float64)
    if machine.shape[0] == 0:
        return "(no intervals recorded)"
    if machine.shape[0] > max_intervals:
        chunks = np.array_split(machine, max_intervals, axis=0)
        machine = np.stack([chunk.sum(axis=0) for chunk in chunks])
    idle = INTERVAL_COLUMNS.index("idle")
    stall = INTERVAL_COLUMNS.index("stall")
    counts = np.concatenate(
        [machine[:, :NUM_W_BUCKETS], machine[:, [idle]],
         machine[:, [stall]]], axis=1)
    cycles = counts.sum(axis=1, keepdims=True)
    cycles[cycles == 0] = 1.0
    fractions = counts / cycles
    labels = session.w_labels() + ["idle", "stall"]
    top = len(_SHADES) - 1
    lines = []
    for category in range(fractions.shape[1] - 1, -1, -1):
        glyphs = "".join(
            _SHADES[min(top, int(value * top + 0.5))]
            for value in fractions[:, category])
        lines.append(f"{labels[category]:>7} |{glyphs}|")
    attribution = session.stall_attribution()
    lines.append(f"{'':>7}  interval = {session.interval} cycles; "
                 f"idle by cause: "
                 + ", ".join(f"{cause}={attribution[cause]}"
                             for cause in ("dram_pending", "issue_port",
                                           "barrier", "drained")))
    lines.append(f"{'':>7}  stall by cause: "
                 + ", ".join(f"{cause}={attribution[cause]}"
                             for cause in ("bank_conflict",
                                           "spawn_conflict")))
    return "\n".join(lines)
