"""Per-thread resource accounting and SM occupancy (paper Table II).

The paper reports the resources each kernel variant needs per thread and
the resulting residency: 22 registers / 60 B shared / 388 B global / 128 B
constant for the traditional kernel versus 20 / 56 B / 384 B / 24 B plus
48 B of spawn memory for the µ-kernels — giving 800 threads/SM for
µ-kernels (register-limited, warp-granular) against 512 for the
traditional kernel under block scheduling (8 blocks x 64 threads).

Our generated assembly touches more architectural registers than NVCC's
output because the toy ISA has no typed 32-bit sub-registers or fused
predicate logic; occupancy therefore uses the paper's per-thread register
counts (declared in each ``.kernel`` directive), while the measured
register footprint is reported alongside for transparency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GPUConfig, SchedulingModel
from repro.isa.program import Program


@dataclass(frozen=True)
class KernelResources:
    """Per-thread resources for one kernel variant (Table II row set)."""

    name: str
    registers: int
    shared_bytes: int
    global_bytes: int
    constant_bytes: int
    spawn_bytes: int
    measured_registers: int = 0
    static_instructions: int = 0


#: The paper's Table II, for side-by-side reporting.
PAPER_TABLE2 = {
    "traditional": KernelResources(
        name="traditional", registers=22, shared_bytes=60, global_bytes=388,
        constant_bytes=128, spawn_bytes=0),
    "microkernel": KernelResources(
        name="microkernel", registers=20, shared_bytes=56, global_bytes=384,
        constant_bytes=24, spawn_bytes=48),
    "microkernel_minimum": KernelResources(
        name="microkernel_minimum", registers=16, shared_bytes=32,
        global_bytes=0, constant_bytes=8, spawn_bytes=48),
}


def measure_resources(program: Program, name: str) -> KernelResources:
    """Resource summary measured from an assembled program.

    Declared (``.kernel`` directive) values feed occupancy; the measured
    register footprint comes from static analysis of the instruction list.
    """
    infos = list(program.kernels.values())
    registers = max(info.registers for info in infos)
    shared = max(info.shared_bytes for info in infos)
    local = max(info.local_bytes for info in infos)
    const = max(info.const_bytes for info in infos)
    state_words = max(info.state_words for info in infos)
    return KernelResources(
        name=name, registers=registers, shared_bytes=shared,
        global_bytes=local + 4,  # +4: the per-ray result word pair is 2x4 B
        constant_bytes=const, spawn_bytes=state_words * 4,
        measured_registers=program.max_register_index() + 1,
        static_instructions=len(program))


def occupancy_threads_per_sm(config: GPUConfig, registers_per_thread: int,
                             block_size: int, scheduling: str | None = None
                             ) -> int:
    """Resident threads per SM for a kernel (paper §VI-A numbers).

    Warp scheduling: limited by warp slots and registers at warp
    granularity (20 regs -> 25 warps -> 800 threads on Table I hardware).
    Block scheduling: additionally limited to whole blocks and the per-SM
    block cap (64-thread blocks -> 8 blocks -> 512 threads).
    """
    scheduling = scheduling or config.scheduling
    warp_size = config.warp_size
    warps_by_threads = config.max_threads_per_sm // warp_size
    warps_by_regs = config.registers_per_sm // (registers_per_thread * warp_size)
    if scheduling == SchedulingModel.BLOCK:
        warps_per_block = max(1, -(-block_size // warp_size))
        blocks = min(config.max_blocks_per_sm,
                     warps_by_threads // warps_per_block,
                     warps_by_regs // warps_per_block)
        return blocks * warps_per_block * warp_size
    return min(warps_by_threads, warps_by_regs) * warp_size


def table2_rows(traditional: KernelResources | None = None,
                micro: KernelResources | None = None) -> list[dict]:
    """Rows for the Table II reproduction: paper vs measured."""
    rows = []
    paper_t = PAPER_TABLE2["traditional"]
    paper_m = PAPER_TABLE2["microkernel"]
    paper_min = PAPER_TABLE2["microkernel_minimum"]
    for field, label in (("registers", "Registers"),
                         ("shared_bytes", "Shared Memory (bytes)"),
                         ("global_bytes", "Global Memory (bytes)"),
                         ("constant_bytes", "Constant Memory (bytes)"),
                         ("spawn_bytes", "Spawn Memory (bytes)")):
        row = {
            "resource": label,
            "paper_traditional": getattr(paper_t, field),
            "paper_microkernel": getattr(paper_m, field),
            "paper_microkernel_minimum": getattr(paper_min, field),
        }
        if traditional is not None:
            row["measured_traditional"] = getattr(traditional, field)
        if micro is not None:
            row["measured_microkernel"] = getattr(micro, field)
        rows.append(row)
    return rows
