"""Pack scene, kd-tree, and rays into simulated device memory.

Global memory map (word addresses, one word = 4 modelled bytes):

====================  =======================================================
region                contents
====================  =======================================================
nodes                 ``num_nodes x 4`` flattened kd-tree nodes
triangles             ``num_triangles x 12`` Wald records
leaf indices          flat triangle-index list referenced by leaves
rays                  ``num_rays x 8``: ox oy oz dx dy dz t_limit pad
results               ``num_rays x 2``: hit t (inf on miss), triangle (-1)
stacks                ``num_rays x STACK_WORDS`` per-ray traversal stacks
                      (32 entries x 3 words = 384 bytes — Table II's
                      per-thread global memory)
====================  =======================================================

Constant memory holds the region base addresses, ray count, and world
bounds (the data the paper's kernels keep in constant memory).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SceneError
from repro.rt.geometry import WALD_TRIANGLE_WORDS, triangles_to_wald_array
from repro.rt.kdtree import KDTree, NODE_WORDS
from repro.simt.memory import GlobalMemory

#: Traversal-stack entries per ray and words per entry (3: node, tmin, tmax).
STACK_ENTRIES = 32
STACK_ENTRY_WORDS = 3
STACK_WORDS = STACK_ENTRIES * STACK_ENTRY_WORDS  # 96 words = 384 bytes

#: Words per ray record and per result record.
RAY_WORDS = 8
RESULT_WORDS = 2

#: Constant-memory slots.
CONST_NODE_BASE = 0
CONST_TRI_BASE = 1
CONST_LEAF_BASE = 2
CONST_RAY_BASE = 3
CONST_RESULT_BASE = 4
CONST_STACK_BASE = 5
CONST_STACK_WORDS = 6
CONST_NUM_RAYS = 7
CONST_WORLD_LO = 8   # 3 words
CONST_WORLD_HI = 11  # 3 words
CONST_COUNTER_BASE = 14  # global address of the work counter (persistent
                         # threads; see repro.kernels.persistent)
CONST_TOTAL_WORDS = 16


@dataclass
class MemoryImage:
    """A populated device-memory image ready to launch."""

    global_mem: GlobalMemory
    const_mem: np.ndarray
    node_base: int
    tri_base: int
    leaf_base: int
    ray_base: int
    result_base: int
    stack_base: int
    num_rays: int

    def results(self) -> tuple[np.ndarray, np.ndarray]:
        """(t, triangle) arrays read back from the result region."""
        words = self.global_mem.words
        region = words[self.result_base:
                       self.result_base + self.num_rays * RESULT_WORDS]
        grid = region.reshape(self.num_rays, RESULT_WORDS)
        return grid[:, 0].copy(), grid[:, 1].astype(np.int64)


def build_memory_image(tree: KDTree, origins: np.ndarray,
                       directions: np.ndarray,
                       t_max: np.ndarray | float = np.inf) -> MemoryImage:
    """Build the device image for ``tree`` and a ray batch."""
    origins = np.asarray(origins, dtype=np.float64).reshape(-1, 3)
    directions = np.asarray(directions, dtype=np.float64).reshape(-1, 3)
    if origins.shape != directions.shape:
        raise SceneError("origins and directions must have equal shapes")
    num_rays = origins.shape[0]
    if num_rays == 0:
        raise SceneError("cannot build an image for zero rays")
    limits = np.broadcast_to(np.asarray(t_max, dtype=np.float64),
                             (num_rays,)).copy()

    nodes = tree.nodes
    wald = triangles_to_wald_array(tree.triangles)
    leaf_indices = tree.leaf_indices.astype(np.float64)

    node_base = 0
    tri_base = node_base + nodes.size
    leaf_base = tri_base + wald.size
    ray_base = leaf_base + max(leaf_indices.size, 1)
    result_base = ray_base + num_rays * RAY_WORDS
    stack_base = result_base + num_rays * RESULT_WORDS
    counter_base = stack_base + num_rays * STACK_WORDS
    total = counter_base + 1  # one word: the persistent-threads counter

    memory = GlobalMemory(total)
    memory.load_array(node_base, nodes)
    memory.load_array(tri_base, wald)
    if leaf_indices.size:
        memory.load_array(leaf_base, leaf_indices)
    rays = np.zeros((num_rays, RAY_WORDS))
    rays[:, 0:3] = origins
    rays[:, 3:6] = directions
    rays[:, 6] = limits
    memory.load_array(ray_base, rays)
    results = np.zeros((num_rays, RESULT_WORDS))
    results[:, 0] = np.nan  # sentinel: untouched result slots stay NaN
    results[:, 1] = -2.0
    memory.load_array(result_base, results)
    memory.set_result_range(result_base, num_rays * RESULT_WORDS,
                            stride=RESULT_WORDS)

    const = np.zeros(CONST_TOTAL_WORDS)
    const[CONST_NODE_BASE] = node_base
    const[CONST_TRI_BASE] = tri_base
    const[CONST_LEAF_BASE] = leaf_base
    const[CONST_RAY_BASE] = ray_base
    const[CONST_RESULT_BASE] = result_base
    const[CONST_STACK_BASE] = stack_base
    const[CONST_STACK_WORDS] = STACK_WORDS
    const[CONST_NUM_RAYS] = num_rays
    const[CONST_WORLD_LO:CONST_WORLD_LO + 3] = tree.bounds.lo
    const[CONST_WORLD_HI:CONST_WORLD_HI + 3] = tree.bounds.hi
    const[CONST_COUNTER_BASE] = counter_base

    assert nodes.shape[1] == NODE_WORDS
    assert wald.shape[1] == WALD_TRIANGLE_WORDS if wald.size else True
    return MemoryImage(global_mem=memory, const_mem=const,
                       node_base=node_base, tri_base=tri_base,
                       leaf_base=leaf_base, ray_base=ray_base,
                       result_base=result_base, stack_base=stack_base,
                       num_rays=num_rays)
