"""The traditional ray-tracing kernel (paper Example 1).

One thread per ray, three nested data-dependent loops executed with PDOM
branching:

1. the outer restart loop over stack entries (``while ray is not finished``),
2. the down-traversal loop (``while not leaf node``),
3. the intersection loop (``while untested objects``).

The loop back-edges are real predicated branches, so warps diverge exactly
as the paper describes: every ray in a warp pays for the longest ray.
"""

from __future__ import annotations

from repro.isa import Program, assemble
from repro.kernels import _fragments as frag
from repro.simt.gpu import LaunchSpec

#: Paper Table II: traditional kernel register requirement (used for
#: occupancy; our generated assembly touches more architectural registers
#: because the toy ISA has no typed sub-registers — see resources.py).
PAPER_REGISTERS = 22

KERNEL_NAME = "trace"


def traditional_source() -> str:
    """Generate the kernel assembly text."""
    pieces = [
        f".kernel {KERNEL_NAME} regs={PAPER_REGISTERS} "
        f"shared=60 local=384 const=128",
        f"{KERNEL_NAME}:",
        frag.load_const_bases(),
        frag.fmt("    mov {rid}, SREG.tid;"),
        frag.load_ray(),
        frag.compute_inverse_direction(),
        frag.compute_stack_address(),
        frag.fmt("""
    mov {sp}, 0;
    mov {node}, 0;
"""),
        frag.slab_test("TRACE_WRITE"),
        """
TRACE_DOWN:
""",
        frag.load_node_words(),
        frag.fmt("""
    setp.eq p1, {t0}, 3;
    @p1 bra TRACE_LEAF;
"""),
        frag.down_step(),
        """
    bra TRACE_DOWN;
TRACE_LEAF:
""",
        frag.fmt("    mov {t3}, 0;"),
        """
TRACE_ISECT:
""",
        frag.fmt("""
    setp.ge p1, {t3}, {t1};
    @p1 bra TRACE_POP;
    add {t4}, {t2}, {t3};
    add {t4}, {t4}, {lb};
    ld.global {t4}, [{t4}+0];
"""),
        frag.triangle_test(),
        frag.fmt("""
    add {t3}, {t3}, 1;
    bra TRACE_ISECT;
"""),
        """
TRACE_POP:
""",
        frag.early_exit_test("TRACE_WRITE"),
        frag.stack_pop("TRACE_WRITE"),
        """
    bra TRACE_DOWN;
TRACE_WRITE:
""",
        frag.write_result(),
        "    exit;",
    ]
    return "\n".join(pieces)


def traditional_program() -> Program:
    """Assemble the traditional kernel into a program."""
    return assemble(traditional_source())


def traditional_launch_spec(num_rays: int, *, block_size: int = 64
                            ) -> LaunchSpec:
    """Launch specification for ``num_rays`` rays (paper: 64-thread blocks
    give the best traditional block-scheduling performance)."""
    program = traditional_program()
    return LaunchSpec(program=program, entry_kernel=KERNEL_NAME,
                      num_threads=num_rays,
                      registers_per_thread=PAPER_REGISTERS,
                      block_size=block_size)


def dynamic_instruction_model(program: Program | None = None
                              ) -> dict[str, int]:
    """Per-operation instruction costs for the MIMD-theoretical model.

    Derived from the assembled program's label positions, so it tracks any
    edit to the kernel. Keys: ``prologue`` (per ray), ``node_visit`` (per
    inner-node step), ``leaf_visit`` (per leaf entered), ``triangle_test``
    (per object test), ``pop`` (per outer-loop iteration), ``write``.
    """
    program = program or traditional_program()
    labels = program.labels
    start = program.kernels[KERNEL_NAME].entry_pc
    down = labels["TRACE_DOWN"]
    leaf = labels["TRACE_LEAF"]
    isect = labels["TRACE_ISECT"]
    pop = labels["TRACE_POP"]
    write = labels["TRACE_WRITE"]
    end = len(program)
    # The leaf-check prefix of TRACE_DOWN runs on every node *and* leaf
    # visit; the remainder of the block only on inner nodes.
    leaf_check = 6  # load_node_words (3) + setp + bra, plus the mul inside
    return {
        "prologue": down - start,
        "node_visit": down and (leaf - down),
        "leaf_visit": leaf_check + (isect - leaf) + 2,
        "triangle_test": pop - isect,
        "pop": write - pop,
        "write": end - write,
    }
