"""Dynamic µ-kernel decomposition of the ray tracer (paper §V).

The three loops of Example 1 are removed; each loop body becomes a
µ-kernel executed by a freshly spawned thread (the paper's *naïve*
scheme — every iteration spawns). 48 bytes (12 words) of state pass
between parent and child through spawn memory:

- ``uk_primary`` — launch kernel: loads the ray, runs the world slab test,
  initializes traversal state, spawns ``uk_traverse`` (or writes a miss
  directly, ending the chain).
- ``uk_traverse`` — one down-traversal step: inner node → step and respawn
  itself; leaf → spawn ``uk_isect`` (or ``uk_pop`` for empty leaves).
- ``uk_isect`` — one ray-triangle test; respawns itself while objects
  remain, then spawns ``uk_pop``.
- ``uk_pop`` — the outer-loop iteration: early-exit check, stack pop, and
  either respawn ``uk_traverse`` or write the result and end the chain.

Each µ-kernel restores its thread's state with three 4-wide vector loads
and saves it back with three 4-wide stores, exactly the overhead the paper
describes (Table II / §VI-A).
"""

from __future__ import annotations

from repro.isa import Program, assemble
from repro.kernels import _fragments as frag
from repro.simt.gpu import LaunchSpec

#: Paper Table II: µ-kernel per-thread register requirement.
PAPER_REGISTERS = 20

#: Words of state passed between threads (48 bytes; paper §VI-A).
MICRO_STATE_WORDS = 12

MICRO_KERNEL_NAMES = ("uk_primary", "uk_traverse", "uk_isect", "uk_pop")

_KERNEL_DECL = (
    "regs={regs} state={state} shared=56 local=384 const=24".format(
        regs=PAPER_REGISTERS, state=MICRO_STATE_WORDS))


def _state_restore() -> str:
    """µ-kernel prologue: follow the warp-formation pointer, load state.

    Leaves the state pointer in ``pk`` (the packed word it displaces is
    unpacked into ``node``/``sp`` first) — Example 2 lines 2-8.
    """
    return frag.fmt("""
    mov {t4}, SREG.spawnMemAddr;
    ld.spawnMem {t5}, [{t4}+0];
    ld.spawnMem.v4 {ox}, [{t5}+0];
    ld.spawnMem.v4 {dy}, [{t5}+4];
    ld.spawnMem.v4 {w8}, [{t5}+8];
    and {sp}, {pk}, 31;
    shr {node}, {pk}, 5;
    mov {pk}, {t5};
""")


def _state_save() -> str:
    """µ-kernel epilogue: re-pack node/sp, store state, pointer → t5.

    Example 2 lines 13-15; the subsequent ``spawn`` takes t5.
    """
    return frag.fmt("""
    mul {t4}, {node}, 32;
    add {t4}, {t4}, {sp};
    mov {t5}, {pk};
    mov {pk}, {t4};
    st.spawnMem.v4 [{t5}+0], {ox};
    st.spawnMem.v4 [{t5}+4], {dy};
    st.spawnMem.v4 [{t5}+8], {w8};
""")


def microkernel_source() -> str:
    """Generate the four-µ-kernel program."""
    pieces = [
        f".kernel uk_primary {_KERNEL_DECL}",
        f".kernel uk_traverse {_KERNEL_DECL}",
        f".kernel uk_isect {_KERNEL_DECL}",
        f".kernel uk_pop {_KERNEL_DECL}",
        # ----------------------------------------------------- uk_primary
        "uk_primary:",
        frag.load_const_bases(),
        frag.fmt("    mov {rid}, SREG.tid;"),
        frag.load_ray(),
        frag.compute_inverse_direction(),
        frag.slab_test("PRIM_WRITE"),
        frag.fmt("""
    mov {pk}, 0;
    mov {t5}, SREG.spawnMemAddr;
    st.spawnMem.v4 [{t5}+0], {ox};
    st.spawnMem.v4 [{t5}+4], {dy};
    st.spawnMem.v4 [{t5}+8], {w8};
    spawn $uk_traverse, {t5};
    exit;
"""),
        "PRIM_WRITE:",
        frag.write_result(),
        "    exit;",
        # ---------------------------------------------------- uk_traverse
        "uk_traverse:",
        _state_restore(),
        frag.load_const_bases(),
        frag.compute_inverse_direction(),
        frag.compute_stack_address(),
        frag.load_node_words(),
        frag.fmt("""
    setp.eq p1, {t0}, 3;
    @p1 bra TRAV_LEAF;
"""),
        frag.down_step(),
        _state_save(),
        frag.fmt("""
    spawn $uk_traverse, {t5};
    exit;
"""),
        "TRAV_LEAF:",
        frag.fmt("    mov {w8}, 0;"),
        _state_save(),
        frag.fmt("""
    setp.gt p1, {t1}, 0;
    @p1 spawn $uk_isect, {t5};
    @p1 exit;
    spawn $uk_pop, {t5};
    exit;
"""),
        # ------------------------------------------------------- uk_isect
        "uk_isect:",
        _state_restore(),
        frag.load_const_bases(),
        frag.load_node_words(),
        frag.fmt("""
    setp.ge p1, {w8}, {t1};
    @p1 bra ISECT_NEXT;
    add {t4}, {t2}, {w8};
    add {t4}, {t4}, {lb};
    ld.global {t4}, [{t4}+0];
"""),
        frag.triangle_test(),
        frag.fmt("    add {w8}, {w8}, 1;"),
        "ISECT_NEXT:",
        frag.fmt("    setp.lt p2, {w8}, {t1};"),
        _state_save(),
        frag.fmt("""
    @p2 spawn $uk_isect, {t5};
    @p2 exit;
    spawn $uk_pop, {t5};
    exit;
"""),
        # --------------------------------------------------------- uk_pop
        "uk_pop:",
        _state_restore(),
        frag.load_const_bases(),
        frag.compute_stack_address(),
        frag.early_exit_test("POP_WRITE"),
        frag.stack_pop("POP_WRITE"),
        _state_save(),
        frag.fmt("""
    spawn $uk_traverse, {t5};
    exit;
"""),
        "POP_WRITE:",
        frag.write_result(),
        "    exit;",
    ]
    return "\n".join(pieces)


def microkernel_program() -> Program:
    """Assemble the µ-kernel program."""
    return assemble(microkernel_source())


def microkernel_launch_spec(num_rays: int, *, block_size: int = 32
                            ) -> LaunchSpec:
    """Launch spec for the µ-kernel benchmark (warp scheduling assumed)."""
    program = microkernel_program()
    return LaunchSpec(program=program, entry_kernel="uk_primary",
                      num_threads=num_rays,
                      registers_per_thread=PAPER_REGISTERS,
                      block_size=block_size,
                      state_words=MICRO_STATE_WORDS)
