"""Irregular BFS kernels over CSR graphs (megakernel and µ-kernel layouts).

The workload the dynamic-parallelism literature maps onto
thread-spawns-threads: a multi-source breadth-first traversal where the
amount of work a thread discovers (a vertex's out-edges) is data-dependent
and wildly non-uniform on skewed graphs.

Both layouts drive the same lock-free shared worklist in global memory:

- ``queue``     — vertex ids in discovery order; slots are pre-filled with
  -1 and *published* (stored) only after the vertex's level is written.
- ``visited``   — one word per vertex; ``atom.exch`` is the
  test-and-set that guarantees each vertex is enqueued exactly once.
- ``counters``  — head (claim cursor), tail (publish cursor), processed
  (finish count), done (termination flag). A worker claims a queue slot
  with ``atom.add`` on head, spins until the slot is published, expands
  the vertex's edges, then bumps processed; the worker whose finish makes
  ``processed == tail`` raises ``done``. ``processed == tail`` implies
  every enqueued vertex has been fully expanded, so the frontier is empty
  and no new publishes can occur — the flag is final.

The megakernel (``bfs_trace``) runs a worker loop in which every lane
advances its own claim/poll/expand state machine by one step per
iteration — real branches, so the divergence between a lane expanding a
hub vertex and its idle warp-mates is visible to the SIMT model, and no
lane ever blocks inside an inner loop (livelock-free under lockstep).

The µ-kernel layout (``bfs_seed → bfs_step → bfs_step → …``) spawns one
child µ-kernel per state-machine step: every frontier-expansion step runs
as a freshly spawned thread carrying an 8-word state record ``(state,
claim, vertex, level, edge, edge_end, pad×2)``, and a chain ends when its
thread observes ``done``. All continuations target a single µ-kernel on
purpose: the paper's formation policy flushes partially formed warps only
when nothing else is runnable, so splitting the FSM across several spawn
targets lets a lane that *holds a claimed vertex* strand in one kernel's
partial pool while spinning claim chains keep the machine busy — a
livelock. With one LUT entry, every subsequent spawn completes the
previous residue, so a claim holder waits at most one warp round, and the
final stragglers flush at drain time.

Results: vertex ``v``'s record holds ``(level, 1.0)`` once some worker
expands it; unreachable vertices keep the ``(NaN, -2)`` sentinel. Levels
are exact BFS levels only under a globally synchronous schedule — the
lock-free race can discover a vertex through a deeper parent first — so
the oracle checks visited-set equality and the true level as a lower
bound (see ``RunResult.verify``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.isa import Program, assemble
from repro.simt.gpu import LaunchSpec
from repro.simt.memory import GlobalMemory
from repro.workloads.graphs import GraphWorkload

#: Constant-memory slots (a self-contained layout, separate from the
#: ray-tracing one in :mod:`repro.kernels.layout`).
GRAPH_CONST_INDPTR = 0
GRAPH_CONST_INDICES = 1
GRAPH_CONST_VISITED = 2
GRAPH_CONST_LEVELS = 3
GRAPH_CONST_QUEUE = 4
GRAPH_CONST_COUNTERS = 5
GRAPH_CONST_RESULT = 6
GRAPH_CONST_NUM_VERTICES = 7
GRAPH_CONST_TOTAL_WORDS = 8

#: Offsets into the counters region.
CTR_HEAD = 0
CTR_TAIL = 1
CTR_PROCESSED = 2
CTR_DONE = 3
COUNTER_WORDS = 4

GRAPH_RESULT_WORDS = 2

#: Occupancy bookkeeping (no Table II analogue; both layouts are lean).
BFS_MEGA_REGISTERS = 19
BFS_MICRO_REGISTERS = 20

#: Words of state passed between spawned threads (32 bytes).
BFS_STATE_WORDS = 8

BFS_KERNEL_NAME = "bfs_trace"
BFS_MICRO_KERNEL_NAMES = ("bfs_seed", "bfs_step")

#: Register map. state..eend are consecutive (r1-r6) so the µ-kernel state
#: moves with two v4 transfers from {state} and {e}; the second transfer
#: deterministically clobbers/spills t0-t1 as pad words.
GREGS = {
    "z": "r0", "state": "r1",
    "claim": "r2", "vertex": "r3", "lvl": "r4", "e": "r5", "eend": "r6",
    "t0": "r7", "t1": "r8", "t2": "r9", "t3": "r10",
    "ipb": "r11", "idb": "r12", "vb": "r13", "lvb": "r14",
    "qb": "r15", "cb": "r16", "rb": "r17", "nv": "r18",
    "sptr": "r19",
}

_MICRO_DECL = (
    "regs={regs} state={state} shared=32 local=0 const=8".format(
        regs=BFS_MICRO_REGISTERS, state=BFS_STATE_WORDS))


def gfmt(template: str, **extra) -> str:
    return template.format(**GREGS, **extra)


@dataclass
class GraphMemoryImage:
    """A populated device-memory image for one BFS run."""

    global_mem: GlobalMemory
    const_mem: np.ndarray
    indptr_base: int
    indices_base: int
    visited_base: int
    levels_base: int
    queue_base: int
    counter_base: int
    result_base: int
    num_vertices: int

    def results(self) -> tuple[np.ndarray, np.ndarray]:
        """(level, visited-flag) arrays read back from the result region."""
        words = self.global_mem.words
        region = words[self.result_base:
                       self.result_base
                       + self.num_vertices * GRAPH_RESULT_WORDS]
        grid = region.reshape(self.num_vertices, GRAPH_RESULT_WORDS)
        return grid[:, 0].copy(), grid[:, 1].astype(np.int64)

    def levels(self) -> np.ndarray:
        """The raw levels region (float words; -1 = undiscovered)."""
        words = self.global_mem.words
        return words[self.levels_base:
                     self.levels_base + self.num_vertices].copy()


def build_graph_memory_image(graph: GraphWorkload) -> GraphMemoryImage:
    """Build the device image for one CSR graph and its BFS roots."""
    num_vertices = graph.num_vertices
    num_sources = int(graph.sources.shape[0])

    indptr_base = 0
    indices_base = indptr_base + num_vertices + 1
    visited_base = indices_base + max(graph.num_edges, 1)
    levels_base = visited_base + num_vertices
    queue_base = levels_base + num_vertices
    counter_base = queue_base + num_vertices
    result_base = counter_base + COUNTER_WORDS
    total = result_base + num_vertices * GRAPH_RESULT_WORDS

    memory = GlobalMemory(total)
    memory.load_array(indptr_base, graph.indptr.astype(np.float64))
    if graph.num_edges:
        memory.load_array(indices_base, graph.indices.astype(np.float64))
    visited = np.zeros(num_vertices)
    visited[graph.sources] = 1.0
    memory.load_array(visited_base, visited)
    levels = np.full(num_vertices, -1.0)
    levels[graph.sources] = 0.0
    memory.load_array(levels_base, levels)
    queue = np.full(num_vertices, -1.0)
    queue[:num_sources] = graph.sources.astype(np.float64)
    memory.load_array(queue_base, queue)
    counters = np.zeros(COUNTER_WORDS)
    counters[CTR_TAIL] = num_sources
    memory.load_array(counter_base, counters)
    results = np.zeros((num_vertices, GRAPH_RESULT_WORDS))
    results[:, 0] = np.nan  # sentinel: never-expanded vertices stay NaN
    results[:, 1] = -2.0
    memory.load_array(result_base, results)
    memory.set_result_range(result_base, num_vertices * GRAPH_RESULT_WORDS,
                            stride=GRAPH_RESULT_WORDS)

    const = np.zeros(GRAPH_CONST_TOTAL_WORDS)
    const[GRAPH_CONST_INDPTR] = indptr_base
    const[GRAPH_CONST_INDICES] = indices_base
    const[GRAPH_CONST_VISITED] = visited_base
    const[GRAPH_CONST_LEVELS] = levels_base
    const[GRAPH_CONST_QUEUE] = queue_base
    const[GRAPH_CONST_COUNTERS] = counter_base
    const[GRAPH_CONST_RESULT] = result_base
    const[GRAPH_CONST_NUM_VERTICES] = num_vertices
    return GraphMemoryImage(global_mem=memory, const_mem=const,
                            indptr_base=indptr_base,
                            indices_base=indices_base,
                            visited_base=visited_base,
                            levels_base=levels_base, queue_base=queue_base,
                            counter_base=counter_base,
                            result_base=result_base,
                            num_vertices=num_vertices)


def _load_graph_bases() -> str:
    """Zero register plus all region base addresses from constant memory."""
    return gfmt("""
    mov {z}, 0;
    ld.const {ipb}, [{z}+0];
    ld.const {idb}, [{z}+1];
    ld.const {vb}, [{z}+2];
    ld.const {lvb}, [{z}+3];
    ld.const {qb}, [{z}+4];
    ld.const {cb}, [{z}+5];
    ld.const {rb}, [{z}+6];
    ld.const {nv}, [{z}+7];
""")


def _claim_step() -> str:
    """head < tail → claim a queue slot (claim ← old head)."""
    return gfmt("""
    ld.global {t0}, [{cb}+0];
    ld.global {t1}, [{cb}+1];
    setp.ge p2, {t0}, {t1};
""")


def _poll_step() -> str:
    """Read queue[claim] into t1; p2 set when the slot is still pending.

    A claim at or beyond the queue capacity can never be published (every
    vertex enqueues at most once), so it polls as pending until ``done``.
    """
    return gfmt("""
    setp.ge p2, {claim}, {nv};
    @p2 bra PENDING;
    add {t0}, {qb}, {claim};
    ld.global {t1}, [{t0}+0];
    setp.lt p2, {t1}, 0;
PENDING:
""")


def _open_vertex() -> str:
    """Slot published: load the vertex's level, edge range, and result."""
    return gfmt("""
    mov {vertex}, {t1};
    add {t0}, {lvb}, {vertex};
    ld.global {lvl}, [{t0}+0];
    add {t0}, {ipb}, {vertex};
    ld.global {e}, [{t0}+0];
    ld.global {eend}, [{t0}+1];
    mul {t0}, {vertex}, 2;
    add {t0}, {rb}, {t0};
    st.global [{t0}+0], {lvl};
    mov {t2}, 1;
    st.global [{t0}+1], {t2};
""")


def _expand_one_edge(skip_label: str) -> str:
    """Process indices[e]: test-and-set visited, publish on first touch.

    Falls through (or branches) to ``skip_label``, which the caller
    defines. The level store precedes the tail bump, so by the time a
    queue slot is published its vertex's level is already in place.
    """
    return gfmt("""
    add {t0}, {idb}, {e};
    ld.global {t1}, [{t0}+0];
    add {e}, {e}, 1;
    add {t0}, {vb}, {t1};
    mov {t2}, 1;
    atom.exch.global {t3}, [{t0}+0], {t2};
    setp.gt p3, {t3}, 0;
    @p3 bra SKIPLABEL;
    add {t0}, {lvb}, {t1};
    add {t2}, {lvl}, 1;
    st.global [{t0}+0], {t2};
    atom.add.global {t3}, [{cb}+1], 1;
    add {t0}, {qb}, {t3};
    st.global [{t0}+0], {t1};
""").replace("SKIPLABEL", skip_label)


def _finish_vertex() -> str:
    """processed++; the finisher that drains the queue raises done."""
    return gfmt("""
    atom.add.global {t0}, [{cb}+2], 1;
    add {t0}, {t0}, 1;
    ld.global {t1}, [{cb}+1];
    setp.ge p3, {t0}, {t1};
    mov {t2}, 1;
    @p3 st.global [{cb}+3], {t2};
""")


def _worker_step(prefix: str, tail_label: str) -> str:
    """One FSM step: claim attempt / publish poll / one edge / finish.

    Every lane advances its own state machine by exactly one step and
    reaches ``tail_label`` (defined by the caller), so warps reconverge
    each step and no lane blocks inside a nested loop.
    """
    return "\n".join([
        gfmt("""
    setp.ne p1, {state}, 0;
    @p1 bra X_SKIP_CLAIM;
"""),
        _claim_step(),
        gfmt("""
    @p2 bra X_SKIP_CLAIM;
    atom.add.global {claim}, [{cb}+0], 1;
    mov {state}, 1;
X_SKIP_CLAIM:
    setp.ne p1, {state}, 1;
    @p1 bra X_SKIP_POLL;
"""),
        _poll_step().replace("PENDING", "X_PENDING"),
        gfmt("""
    @p2 bra X_SKIP_POLL;
"""),
        _open_vertex(),
        gfmt("""
    mov {state}, 2;
X_SKIP_POLL:
    setp.ne p1, {state}, 2;
    @p1 bra X_TAIL;
    setp.lt p2, {e}, {eend};
    @p2 bra X_EDGE;
"""),
        _finish_vertex(),
        gfmt("""
    mov {state}, 0;
    bra X_TAIL;
X_EDGE:
"""),
        _expand_one_edge("X_TAIL"),
    ]).replace("X_TAIL", tail_label).replace("X_", prefix + "_")


def bfs_source() -> str:
    """The BFS megakernel: a lockstep-safe worker state-machine loop."""
    pieces = [
        f".kernel {BFS_KERNEL_NAME} regs={BFS_MEGA_REGISTERS} "
        f"shared=32 local=0 const=8",
        f"{BFS_KERNEL_NAME}:",
        _load_graph_bases(),
        gfmt("""
    mov {state}, 0;
    mov {claim}, 0;
    mov {vertex}, 0;
    mov {lvl}, 0;
    mov {e}, 0;
    mov {eend}, 0;
"""),
        """
BFS_LOOP:
""",
        gfmt("""
    ld.global {t0}, [{cb}+3];
    setp.gt p1, {t0}, 0;
    @p1 bra BFS_EXIT;
"""),
        _worker_step("BFS", "BFS_TAIL"),
        """
BFS_TAIL:
    bra BFS_LOOP;
BFS_EXIT:
    exit;
""",
    ]
    return "\n".join(pieces)


def _bfs_state_restore() -> str:
    """µ-kernel prologue: follow the state pointer, two v4 loads."""
    return gfmt("""
    mov {t3}, SREG.spawnMemAddr;
    ld.spawnMem {sptr}, [{t3}+0];
    ld.spawnMem.v4 {state}, [{sptr}+0];
    ld.spawnMem.v4 {e}, [{sptr}+4];
""")


def _bfs_state_save_and_spawn(target: str) -> str:
    """µ-kernel epilogue: two v4 stores, spawn exactly one continuation."""
    return gfmt("""
    st.spawnMem.v4 [{sptr}+0], {state};
    st.spawnMem.v4 [{sptr}+4], {e};
    spawn $TARGET, {sptr};
    exit;
""").replace("TARGET", target)


def bfs_microkernel_source() -> str:
    """The spawn-layout BFS: every worker step is a spawned µ-kernel."""
    pieces = [
        f".kernel bfs_seed {_MICRO_DECL}",
        f".kernel bfs_step {_MICRO_DECL}",
        # ------------------------------------------------------- bfs_seed
        "bfs_seed:",
        gfmt("""
    mov {state}, 0;
    mov {claim}, 0;
    mov {vertex}, 0;
    mov {lvl}, 0;
    mov {e}, 0;
    mov {eend}, 0;
    mov {t0}, 0;
    mov {t1}, 0;
    mov {sptr}, SREG.spawnMemAddr;
"""),
        _bfs_state_save_and_spawn("bfs_step"),
        # ------------------------------------------------------- bfs_step
        "bfs_step:",
        _bfs_state_restore(),
        _load_graph_bases(),
        gfmt("""
    ld.global {t0}, [{cb}+3];
    setp.gt p1, {t0}, 0;
    @p1 exit;
"""),
        _worker_step("STEP", "STEP_TAIL"),
        "STEP_TAIL:",
        _bfs_state_save_and_spawn("bfs_step"),
    ]
    return "\n".join(pieces)


def bfs_program() -> Program:
    """Assemble the BFS megakernel."""
    return assemble(bfs_source())


def bfs_microkernel_program() -> Program:
    """Assemble the BFS µ-kernel program."""
    return assemble(bfs_microkernel_source())


def bfs_launch_spec(num_workers: int, *, block_size: int = 64) -> LaunchSpec:
    """Launch spec for the megakernel worker pool."""
    program = bfs_program()
    return LaunchSpec(program=program, entry_kernel=BFS_KERNEL_NAME,
                      num_threads=num_workers,
                      registers_per_thread=BFS_MEGA_REGISTERS,
                      block_size=block_size)


def bfs_microkernel_launch_spec(num_workers: int, *, block_size: int = 32
                                ) -> LaunchSpec:
    """Launch spec for the spawn layout (one worker chain per thread)."""
    program = bfs_microkernel_program()
    return LaunchSpec(program=program, entry_kernel="bfs_seed",
                      num_threads=num_workers,
                      registers_per_thread=BFS_MICRO_REGISTERS,
                      block_size=block_size,
                      state_words=BFS_STATE_WORDS)
