"""Shared assembly fragments for the ray-tracing kernels.

Both the traditional kernel (Example 1) and the µ-kernel decomposition are
generated from these fragments, so the two implementations perform
*bit-identical* floating-point arithmetic — a property the test suite
relies on when comparing either kernel against the scalar reference tracer
(:mod:`repro.rt.trace`), which mirrors the same operation ordering.

Register map (shared by all kernels; the first 12 registers are exactly the
48-byte/12-word state record passed through spawn memory):

======  =====  =========================================================
name    reg    contents
======  =====  =========================================================
ox..oz  r0-2   ray origin
dx..dz  r3-5   ray direction
bt      r6     best hit t (initialized to the ray's t limit)
btri    r7     best hit triangle index (-1 = none)
w8      r8     traversal t_min / leaf iterator (phase-dependent)
tmax    r9     traversal t_max
pk      r10    packed node*32 + stack pointer (µ-kernels) / scratch
rid     r11    ray id
ix..iz  r12-14 reciprocal direction
node    r15    current node index
sp      r16    traversal stack pointer
sa      r17    stack base address (traditional) / state pointer (µ)
t0..t7  r18-25 temporaries
k..pad2 r26-37 Wald triangle record (12 consecutive words)
z       r38    constant zero (constant-memory base addressing)
nb      r39    node-array base address
tb      r40    triangle-array base address
lb      r41    leaf-index-array base address
======  =====  =========================================================
"""

from __future__ import annotations

from repro.rt.trace import T_EPS

#: Registers available to kernels (see module docstring).
REGS = {
    "ox": "r0", "oy": "r1", "oz": "r2",
    "dx": "r3", "dy": "r4", "dz": "r5",
    "bt": "r6", "btri": "r7", "w8": "r8", "tmax": "r9",
    "pk": "r10", "rid": "r11",
    "ix": "r12", "iy": "r13", "iz": "r14",
    "node": "r15", "sp": "r16", "sa": "r17",
    "t0": "r18", "t1": "r19", "t2": "r20", "t3": "r21",
    "t4": "r22", "t5": "r23", "t6": "r24", "t7": "r25",
    "k": "r26", "nu": "r27", "nv": "r28", "nd": "r29",
    "au": "r30", "av": "r31", "bnu": "r32", "bnv": "r33",
    "cnu": "r34", "cnv": "r35", "pad1": "r36", "pad2": "r37",
    "z": "r38", "nb": "r39", "tb": "r40", "lb": "r41",
}

#: Total general registers the generated kernels touch.
NUM_REGS_USED = 42

#: Epsilon shared with the reference tracer (bit-identical comparisons).
EPS = T_EPS


def fmt(template: str, **extra) -> str:
    """Expand {reg} placeholders (plus any extras) in an asm template."""
    return template.format(**REGS, EPS=repr(EPS), **extra)


def load_const_bases() -> str:
    """Zero register + node/triangle/leaf base addresses from constant mem."""
    return fmt("""
    mov {z}, 0;
    ld.const {nb}, [{z}+0];
    ld.const {tb}, [{z}+1];
    ld.const {lb}, [{z}+2];
""")


def load_ray() -> str:
    """Load the 8-word ray record for ray ``rid`` into r0..r7.

    Word 6 (the ray's t limit) lands directly in ``bt``, initializing the
    closest-hit search; ``btri`` is reset to -1 afterwards.
    """
    return fmt("""
    ld.const {t0}, [{z}+3];
    mul {t1}, {rid}, 8;
    add {t1}, {t1}, {t0};
    ld.global.v4 {ox}, [{t1}+0];
    ld.global.v4 {dy}, [{t1}+4];
    mov {btri}, -1;
""")


def compute_inverse_direction() -> str:
    return fmt("""
    rcp {ix}, {dx};
    rcp {iy}, {dy};
    rcp {iz}, {dz};
""")


def compute_stack_address() -> str:
    """sa = stack_base + rid * stack_words."""
    return fmt("""
    ld.const {t0}, [{z}+5];
    ld.const {t1}, [{z}+6];
    mul {t1}, {rid}, {t1};
    add {sa}, {t0}, {t1};
""")


def _slab_axis(axis_index: int, o: str, i: str) -> str:
    return fmt("""
    ld.const {t0}, [{z}+{LO}];
    ld.const {t1}, [{z}+{HI}];
    sub {t0}, {t0}, {O};
    mul {t0}, {t0}, {I};
    sub {t1}, {t1}, {O};
    mul {t1}, {t1}, {I};
    setp.eq p0, {t0}, {t0};
    selp {t0}, {t0}, -inf, p0;
    setp.eq p0, {t1}, {t1};
    selp {t1}, {t1}, inf, p0;
    min {t2}, {t0}, {t1};
    max {t3}, {t0}, {t1};
    max {w8}, {w8}, {t2};
    min {tmax}, {tmax}, {t3};
""", LO=8 + axis_index, HI=11 + axis_index, O=REGS[o], I=REGS[i])


def slab_test(miss_label: str) -> str:
    """World-bounds slab test; leaves [t_enter, t_exit] in (w8, tmax).

    Mirrors :meth:`repro.rt.geometry.AABB.ray_range` exactly, including the
    NaN-to-infinity fixups for zero direction components, then clamps
    t_enter to 0 and t_exit to the ray limit (held in ``bt``). Branches to
    ``miss_label`` when the ray misses the world.
    """
    body = fmt("""
    mov {w8}, -inf;
    mov {tmax}, inf;
""")
    body += _slab_axis(0, "ox", "ix")
    body += _slab_axis(1, "oy", "iy")
    body += _slab_axis(2, "oz", "iz")
    body += fmt("""
    max {w8}, {w8}, 0;
    min {tmax}, {tmax}, {bt};
    setp.gt p0, {w8}, {tmax};
    @p0 bra MISS;
""", ).replace("MISS", miss_label)
    return body


def load_node_words() -> str:
    """Fetch the 4 node words for ``node`` into t0..t3."""
    return fmt("""
    mul {t4}, {node}, 4;
    add {t4}, {t4}, {nb};
    ld.global.v4 {t0}, [{t4}+0];
""")


def down_step() -> str:
    """One inner-node traversal step (predicated, branch-free).

    Expects node words in t0..t3 (axis, split, left, right); updates
    ``node``, ``w8`` (t_min), ``tmax``, ``sp`` and pushes the far child on
    the per-ray stack at ``sa``. The arithmetic mirrors
    :func:`repro.rt.trace._trace_one` line for line.
    """
    return fmt("""
    setp.eq p1, {t0}, 0;
    setp.eq p2, {t0}, 1;
    selp {t4}, {oy}, {oz}, p2;
    selp {t4}, {ox}, {t4}, p1;
    selp {t5}, {dy}, {dz}, p2;
    selp {t5}, {dx}, {t5}, p1;
    selp {t6}, {iy}, {iz}, p2;
    selp {t6}, {ix}, {t6}, p1;
    sub {t7}, {t1}, {t4};
    mul {t7}, {t7}, {t6};
    setp.eq p1, {t7}, {t7};
    selp {t7}, {t7}, inf, p1;
    setp.lt p1, {t4}, {t1};
    setp.eq p2, {t4}, {t1};
    setp.gt p3, {t5}, 0;
    selp {k}, 1, 0, p2;
    selp {k}, {k}, 0, p3;
    selp {k}, 1, {k}, p1;
    setp.gt p1, {k}, 0;
    selp {nu}, {t2}, {t3}, p1;
    selp {nv}, {t3}, {t2}, p1;
    add {nd}, {tmax}, {EPS};
    setp.ge p2, {t7}, {nd};
    setp.lt p3, {t7}, 0;
    selp {nd}, 1, 0, p2;
    selp {nd}, 1, {nd}, p3;
    setp.gt p2, {nd}, 0;
    sub {au}, {w8}, {EPS};
    setp.le p3, {t7}, {au};
    selp {au}, 0, 1, p2;
    selp {av}, {au}, 0, p3;
    selp {bnu}, 0, {au}, p3;
    setp.gt p1, {av}, 0;
    setp.gt p3, {bnu}, 0;
    selp {node}, {nv}, {nu}, p1;
    mul {bnv}, {sp}, 3;
    add {bnv}, {sa}, {bnv};
    max {cnu}, {t7}, {w8};
    @p3 st.global [{bnv}+0], {nv};
    @p3 st.global [{bnv}+1], {cnu};
    @p3 st.global [{bnv}+2], {tmax};
    @p3 add {sp}, {sp}, 1;
    min {cnv}, {t7}, {tmax};
    @p3 mov {tmax}, {cnv};
""")


def triangle_test() -> str:
    """Wald intersection of the triangle whose index is in t4.

    Updates ``bt``/``btri`` under predicate on hit; preserves t1..t4
    (leaf bookkeeping). Mirrors :meth:`WaldTriangle.intersect` exactly.
    """
    return fmt("""
    mul {t5}, {t4}, 12;
    add {t5}, {t5}, {tb};
    ld.global.v4 {k}, [{t5}+0];
    ld.global.v4 {au}, [{t5}+4];
    ld.global.v4 {cnu}, [{t5}+8];
    setp.eq p1, {k}, 0;
    setp.eq p2, {k}, 1;
    selp {t5}, {oy}, {oz}, p2;
    selp {t5}, {ox}, {t5}, p1;
    selp {t6}, {oz}, {ox}, p2;
    selp {t6}, {oy}, {t6}, p1;
    selp {t7}, {ox}, {oy}, p2;
    selp {t7}, {oz}, {t7}, p1;
    selp {pad1}, {dy}, {dz}, p2;
    selp {pad1}, {dx}, {pad1}, p1;
    selp {pad2}, {dz}, {dx}, p2;
    selp {pad2}, {dy}, {pad2}, p1;
    selp {t0}, {dx}, {dy}, p2;
    selp {t0}, {dz}, {t0}, p1;
    mul {pad2}, {nu}, {pad2};
    add {pad1}, {pad1}, {pad2};
    mul {t0}, {nv}, {t0};
    add {pad1}, {pad1}, {t0};
    sub {t5}, {nd}, {t5};
    mul {t0}, {nu}, {t6};
    sub {t5}, {t5}, {t0};
    mul {t0}, {nv}, {t7};
    sub {t5}, {t5}, {t0};
    div {t5}, {t5}, {pad1};
    selp {pad1}, {dz}, {dx}, p2;
    selp {pad1}, {dy}, {pad1}, p1;
    selp {pad2}, {dx}, {dy}, p2;
    selp {pad2}, {dz}, {pad2}, p1;
    mul {pad1}, {t5}, {pad1};
    add {pad1}, {t6}, {pad1};
    sub {pad1}, {pad1}, {au};
    mul {pad2}, {t5}, {pad2};
    add {pad2}, {t7}, {pad2};
    sub {pad2}, {pad2}, {av};
    mul {t6}, {pad1}, {bnu};
    mul {t7}, {pad2}, {bnv};
    add {t6}, {t6}, {t7};
    mul {t7}, {pad1}, {cnu};
    mul {t0}, {pad2}, {cnv};
    add {t7}, {t7}, {t0};
    mov {t0}, 1;
    sub {t0}, {t0}, {t6};
    sub {t0}, {t0}, {t7};
    min {t0}, {t0}, {t6};
    min {t0}, {t0}, {t7};
    setp.ge p1, {t0}, 0;
    sub {t0}, {bt}, {t5};
    min {t0}, {t0}, {t5};
    setp.gt p2, {t0}, 0;
    selp {t0}, 1, 0, p1;
    selp {t0}, {t0}, 0, p2;
    setp.gt p1, {t0}, 0;
    @p1 mov {bt}, {t5};
    @p1 mov {btri}, {t4};
""")


def early_exit_test(write_label: str) -> str:
    """Branch to ``write_label`` when the closest hit is final.

    The reference's post-leaf check: a recorded hit whose t lies within the
    leaf's [.., t_max + eps] range cannot be beaten by any unvisited node.
    """
    return fmt("""
    add {t0}, {tmax}, {EPS};
    setp.le p1, {bt}, {t0};
    setp.ge p2, {btri}, 0;
    selp {t0}, 1, 0, p1;
    selp {t0}, {t0}, 0, p2;
    setp.gt p1, {t0}, 0;
    @p1 bra WRITE;
""").replace("WRITE", write_label)


def stack_pop(write_label: str) -> str:
    """Pop (node, t_min, t_max); branch to ``write_label`` if empty."""
    return fmt("""
    setp.le p2, {sp}, 0;
    @p2 bra WRITE;
    sub {sp}, {sp}, 1;
    mul {t0}, {sp}, 3;
    add {t0}, {sa}, {t0};
    ld.global {node}, [{t0}+0];
    ld.global {w8}, [{t0}+1];
    ld.global {tmax}, [{t0}+2];
""").replace("WRITE", write_label)


def write_result() -> str:
    """Store (t, triangle) to the result region; misses store (inf, -1)."""
    return fmt("""
    setp.ge p1, {btri}, 0;
    selp {t0}, {bt}, inf, p1;
    mov {t1}, {btri};
    ld.const {t2}, [{z}+4];
    mul {t3}, {rid}, 2;
    add {t2}, {t2}, {t3};
    st.global.v2 [{t2}+0], {t0};
""")
