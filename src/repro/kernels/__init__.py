"""SIMT ray-tracing kernels: traditional (Example 1) and dynamic µ-kernels.

- :mod:`repro.kernels.layout` packs a scene, its kd-tree, and a ray batch
  into simulated global/constant memory.
- :mod:`repro.kernels.traditional` is the paper's Example 1 kernel: three
  nested data-dependent loops, executed with PDOM branching.
- :mod:`repro.kernels.microkernels` is the paper's §V decomposition: the
  three loops are removed and replaced by spawn chains through four
  µ-kernels, passing 48 bytes of state through spawn memory.
- :mod:`repro.kernels.resources` reproduces Table II's per-thread resource
  accounting and the resulting occupancy (512 vs 800 threads/SM).
- :mod:`repro.kernels.pathtrace` extends both layouts to multi-bounce
  path tracing: a seeded roulette loop wrapped around the traversal, as a
  megakernel restart loop and as a five-µ-kernel spawn chain.
- :mod:`repro.kernels.graph` is the non-rendering family: frontier BFS
  over a shared lock-free worklist, as a megakernel worker loop and as a
  self-respawning single-step µ-kernel.
"""

from repro.kernels.graph import (
    BFS_KERNEL_NAME,
    BFS_MICRO_KERNEL_NAMES,
    GraphMemoryImage,
    bfs_launch_spec,
    bfs_microkernel_launch_spec,
    bfs_microkernel_program,
    bfs_program,
    build_graph_memory_image,
)
from repro.kernels.layout import MemoryImage, build_memory_image
from repro.kernels.microkernels import (
    MICRO_KERNEL_NAMES,
    MICRO_STATE_WORDS,
    microkernel_launch_spec,
    microkernel_program,
)
from repro.kernels.pathtrace import (
    PT_KERNEL_NAME,
    PT_MICRO_KERNEL_NAMES,
    PT_STATE_WORDS,
    extend_image_for_path,
    pathtrace_launch_spec,
    pathtrace_microkernel_launch_spec,
    pathtrace_microkernel_program,
    pathtrace_program,
)
from repro.kernels.resources import (
    KernelResources,
    PAPER_TABLE2,
    occupancy_threads_per_sm,
    table2_rows,
)
from repro.kernels.traditional import traditional_launch_spec, traditional_program

__all__ = [
    "BFS_KERNEL_NAME",
    "BFS_MICRO_KERNEL_NAMES",
    "GraphMemoryImage",
    "MICRO_KERNEL_NAMES",
    "MICRO_STATE_WORDS",
    "MemoryImage",
    "KernelResources",
    "PAPER_TABLE2",
    "PT_KERNEL_NAME",
    "PT_MICRO_KERNEL_NAMES",
    "PT_STATE_WORDS",
    "bfs_launch_spec",
    "bfs_microkernel_launch_spec",
    "bfs_microkernel_program",
    "bfs_program",
    "build_graph_memory_image",
    "build_memory_image",
    "extend_image_for_path",
    "microkernel_launch_spec",
    "microkernel_program",
    "occupancy_threads_per_sm",
    "pathtrace_launch_spec",
    "pathtrace_microkernel_launch_spec",
    "pathtrace_microkernel_program",
    "pathtrace_program",
    "table2_rows",
    "traditional_launch_spec",
    "traditional_program",
]
