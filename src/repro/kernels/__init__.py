"""SIMT ray-tracing kernels: traditional (Example 1) and dynamic µ-kernels.

- :mod:`repro.kernels.layout` packs a scene, its kd-tree, and a ray batch
  into simulated global/constant memory.
- :mod:`repro.kernels.traditional` is the paper's Example 1 kernel: three
  nested data-dependent loops, executed with PDOM branching.
- :mod:`repro.kernels.microkernels` is the paper's §V decomposition: the
  three loops are removed and replaced by spawn chains through four
  µ-kernels, passing 48 bytes of state through spawn memory.
- :mod:`repro.kernels.resources` reproduces Table II's per-thread resource
  accounting and the resulting occupancy (512 vs 800 threads/SM).
"""

from repro.kernels.layout import MemoryImage, build_memory_image
from repro.kernels.microkernels import (
    MICRO_KERNEL_NAMES,
    MICRO_STATE_WORDS,
    microkernel_launch_spec,
    microkernel_program,
)
from repro.kernels.resources import (
    KernelResources,
    PAPER_TABLE2,
    occupancy_threads_per_sm,
    table2_rows,
)
from repro.kernels.traditional import traditional_launch_spec, traditional_program

__all__ = [
    "MICRO_KERNEL_NAMES",
    "MICRO_STATE_WORDS",
    "MemoryImage",
    "KernelResources",
    "PAPER_TABLE2",
    "build_memory_image",
    "microkernel_launch_spec",
    "microkernel_program",
    "occupancy_threads_per_sm",
    "table2_rows",
    "traditional_launch_spec",
    "traditional_program",
]
