"""Persistent-threads software baseline (Aila & Laine, HPG 2009).

The paper's §VIII describes this related work: launch "just enough threads
to keep the machine full" and let each thread pull work items from a
global queue with atomic instructions, rather than mapping one launch
thread per ray. This is the single-queue variant: after finishing a ray,
every lane atomically fetches a fresh ray id and loops. It removes the
end-of-grid tail imbalance and keeps warps full of *some* work, but — as
the paper argues — it cannot remove intra-warp divergence inside the
traversal loops, and the atomics serialize.

The kernel body is generated from the same fragments as the traditional
kernel, so results remain bit-identical to the reference tracer.
"""

from __future__ import annotations

from repro.isa import Program, assemble
from repro.kernels import _fragments as frag
from repro.simt.gpu import LaunchSpec

KERNEL_NAME = "persist"

#: Same per-thread resources as the traditional kernel plus the work
#: counter register; the paper's description implies comparable residency.
PAPER_REGISTERS = 22


def persistent_source() -> str:
    """Generate the persistent-threads kernel assembly."""
    pieces = [
        f".kernel {KERNEL_NAME} regs={PAPER_REGISTERS} "
        f"shared=60 local=384 const=128",
        f"{KERNEL_NAME}:",
        frag.load_const_bases(),
        """
PERSIST_NEXT:
""",
        # Fetch the next ray id from the global work queue.
        frag.fmt("""
    ld.const {t0}, [{z}+14];
    atom.add.global {rid}, [{t0}+0], 1;
    ld.const {t1}, [{z}+7];
    setp.ge p1, {rid}, {t1};
    @p1 exit;
"""),
        frag.load_ray(),
        frag.compute_inverse_direction(),
        frag.compute_stack_address(),
        frag.fmt("""
    mov {sp}, 0;
    mov {node}, 0;
"""),
        frag.slab_test("PERSIST_WRITE"),
        """
PERSIST_DOWN:
""",
        frag.load_node_words(),
        frag.fmt("""
    setp.eq p1, {t0}, 3;
    @p1 bra PERSIST_LEAF;
"""),
        frag.down_step(),
        """
    bra PERSIST_DOWN;
PERSIST_LEAF:
""",
        frag.fmt("    mov {t3}, 0;"),
        """
PERSIST_ISECT:
""",
        frag.fmt("""
    setp.ge p1, {t3}, {t1};
    @p1 bra PERSIST_POP;
    add {t4}, {t2}, {t3};
    add {t4}, {t4}, {lb};
    ld.global {t4}, [{t4}+0];
"""),
        frag.triangle_test(),
        frag.fmt("""
    add {t3}, {t3}, 1;
    bra PERSIST_ISECT;
"""),
        """
PERSIST_POP:
""",
        frag.early_exit_test("PERSIST_WRITE"),
        frag.stack_pop("PERSIST_WRITE"),
        """
    bra PERSIST_DOWN;
PERSIST_WRITE:
""",
        frag.write_result(),
        # Instead of exiting, loop back for more work (persistence).
        """
    bra PERSIST_NEXT;
""",
    ]
    return "\n".join(pieces)


def persistent_program() -> Program:
    return assemble(persistent_source())


def persistent_launch_spec(num_persistent_threads: int, *,
                           block_size: int = 64) -> LaunchSpec:
    """Launch spec for ``num_persistent_threads`` worker threads.

    Unlike the grid kernels, the launch size is the machine's residency
    ("just enough threads to keep the machine full"), not the ray count;
    the ray count lives in constant memory and the work counter in global
    memory (:mod:`repro.kernels.layout`).
    """
    program = persistent_program()
    return LaunchSpec(program=program, entry_kernel=KERNEL_NAME,
                      num_threads=num_persistent_threads,
                      registers_per_thread=PAPER_REGISTERS,
                      block_size=block_size)


def persistent_thread_count(config, scheduling: str | None = None) -> int:
    """Residency-filling thread count for ``config`` (whole machine)."""
    from repro.kernels.resources import occupancy_threads_per_sm

    per_sm = occupancy_threads_per_sm(config, PAPER_REGISTERS,
                                      block_size=64,
                                      scheduling=scheduling)
    return per_sm * config.num_sms
