"""Multi-bounce path-tracing kernels (megakernel and µ-kernel layouts).

The russian-roulette bounce loop is the paper's data-dependent-loop story
amplified: every ray runs the whole single-bounce tracer *per segment*,
and whether a ray goes another round depends on its private RNG draw, so
warp occupancy decays ray by ray — the divergence shape the
megakernel-vs-wavefront path-tracing literature measures.

Two layouts share every arithmetic fragment (and hence produce
bit-identical results, verified against :mod:`repro.rt.pathtrace`):

- ``pt_trace`` — the traditional megakernel: the bounce loop is a fourth
  nested data-dependent loop wrapped around Example 1's three.
- ``pt_primary`` … ``pt_bounce`` — the spawn decomposition: the existing
  traversal µ-kernels widened to a 64-byte (16-word) state record that
  additionally carries ``(rng, bounce, last_tri, pad)``, plus a new
  ``pt_bounce`` µ-kernel holding the roulette test and the diffuse-bounce
  shading; each continuing path re-enters ``pt_traverse`` as a freshly
  spawned thread.

Per-ray RNG is a Park–Miller LCG computed exactly in float64 (see
:mod:`repro.rt.pathtrace` for the proof sketch); the result record stores
``(bounce_count, last_hit_triangle)``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.isa import Program, assemble
from repro.kernels import _fragments as frag
from repro.kernels.layout import CONST_TOTAL_WORDS, MemoryImage
from repro.simt.gpu import LaunchSpec

#: Constant-memory slots appended to the base layout for path tracing.
PATH_CONST_MAX_DEPTH = CONST_TOTAL_WORDS - 1   # 15 (spare slot in the base)
PATH_CONST_ROULETTE_Q = CONST_TOTAL_WORDS      # 16
PATH_CONST_SEED = CONST_TOTAL_WORDS + 1        # 17
PATH_CONST_TOTAL_WORDS = CONST_TOTAL_WORDS + 2

#: Occupancy bookkeeping in the spirit of Table II: the single-bounce
#: register budgets plus two live values (RNG state, bounce counter).
PT_MEGA_REGISTERS = 24
PT_MICRO_REGISTERS = 22

#: Words of state passed between spawned threads (64 bytes: the 12-word
#: traversal record plus rng/bounce/last-tri/pad).
PT_STATE_WORDS = 16

PT_KERNEL_NAME = "pt_trace"
PT_MICRO_KERNEL_NAMES = ("pt_primary", "pt_traverse", "pt_isect",
                         "pt_pop", "pt_bounce")

#: Extra architectural registers beyond the shared map: the path state
#: words 12-15. They are consecutive so one v4 transfer moves all four.
PT_REGS = {"rng": "r42", "bounce": "r43", "ltri": "r44", "ptpad": "r45"}

#: Total general registers the generated path kernels touch.
PT_NUM_REGS_USED = 46

_MICRO_DECL = (
    "regs={regs} state={state} shared=56 local=384 const=24".format(
        regs=PT_MICRO_REGISTERS, state=PT_STATE_WORDS))


def _pfmt(template: str, **extra) -> str:
    return frag.fmt(template, **PT_REGS, **extra)


def extend_image_for_path(image: MemoryImage, *, max_depth: int,
                          roulette_q: float, seed: int) -> MemoryImage:
    """Widen an image's constant memory with the path-tracing knobs."""
    const = np.zeros(PATH_CONST_TOTAL_WORDS)
    const[:image.const_mem.shape[0]] = image.const_mem
    const[PATH_CONST_MAX_DEPTH] = int(max_depth)
    const[PATH_CONST_ROULETTE_Q] = float(roulette_q)
    const[PATH_CONST_SEED] = int(seed)
    return dataclasses.replace(image, const_mem=const)


def rng_init() -> str:
    """Seed the per-ray LCG exactly as :func:`repro.rt.pathtrace.rng_init`."""
    return _pfmt("""
    mul {t0}, {rid}, 9973;
    ld.const {t1}, [{z}+{SEED}];
    mul {t1}, {t1}, 12345;
    add {t0}, {t0}, {t1};
    add {t0}, {t0}, 1;
    rem {rng}, {t0}, 2147483647;
    max {rng}, {rng}, 1;
""", SEED=PATH_CONST_SEED)


def rng_draw(dst: str) -> str:
    """Advance the LCG and leave the uniform in ``dst`` (a REGS name)."""
    return _pfmt("""
    mul {rng}, {rng}, 48271;
    rem {rng}, {rng}, 2147483647;
    div {DST}, {rng}, 2147483647;
""", DST=frag.REGS[dst])


def write_path_result() -> str:
    """Store (bounce_count, last_triangle); bounce/ltri are consecutive."""
    return _pfmt("""
    ld.const {t2}, [{z}+4];
    mul {t3}, {rid}, 2;
    add {t2}, {t2}, {t3};
    st.global.v2 [{t2}+0], {bounce};
""")


def _diffuse_bounce() -> str:
    """Roulette survived: draw a sphere-offset diffuse direction.

    Mirrors the shading block of
    :func:`repro.rt.pathtrace._path_trace_one` operation for operation;
    consumes three uniforms, leaves the new direction in dx..dz and the
    nudged origin in ox..oz. The normalized flipped normal survives in
    au/av/bnu for the degenerate-sample ``selp`` fallbacks.
    """
    pieces = [rng_draw("t2"), rng_draw("t3"), rng_draw("t4"), _pfmt("""
    mul {t5}, {ltri}, 12;
    add {t5}, {t5}, {tb};
    ld.global.v4 {k}, [{t5}+0];
    setp.eq p1, {k}, 0;
    setp.eq p2, {k}, 1;
    selp {au}, {nv}, {nu}, p2;
    selp {au}, 1, {au}, p1;
    selp {av}, 1, {nv}, p2;
    selp {av}, {nu}, {av}, p1;
    selp {bnu}, {nu}, 1, p2;
    selp {bnu}, {nv}, {bnu}, p1;
    mul {t0}, {au}, {dx};
    mad {t0}, {av}, {dy}, {t0};
    mad {t0}, {bnu}, {dz}, {t0};
    setp.gt p3, {t0}, 0;
    @p3 neg {au}, {au};
    @p3 neg {av}, {av};
    @p3 neg {bnu}, {bnu};
    mul {t1}, {au}, {au};
    mad {t1}, {av}, {av}, {t1};
    mad {t1}, {bnu}, {bnu}, {t1};
    rsqrt {t1}, {t1};
    mul {au}, {au}, {t1};
    mul {av}, {av}, {t1};
    mul {bnu}, {bnu}, {t1};
    mad {t2}, {t2}, 2, -1;
    mad {t3}, {t3}, 2, -1;
    mad {t4}, {t4}, 2, -1;
    mul {t5}, {t2}, {t2};
    mad {t5}, {t3}, {t3}, {t5};
    mad {t5}, {t4}, {t4}, {t5};
    rsqrt {t6}, {t5};
    setp.ge p3, {t5}, 1e-12;
    mul {t7}, {t2}, {t6};
    selp {t2}, {t7}, {au}, p3;
    mul {t7}, {t3}, {t6};
    selp {t3}, {t7}, {av}, p3;
    mul {t7}, {t4}, {t6};
    selp {t4}, {t7}, {bnu}, p3;
    add {t2}, {au}, {t2};
    add {t3}, {av}, {t3};
    add {t4}, {bnu}, {t4};
    mul {t5}, {t2}, {t2};
    mad {t5}, {t3}, {t3}, {t5};
    mad {t5}, {t4}, {t4}, {t5};
    rsqrt {t6}, {t5};
    setp.ge p3, {t5}, 1e-12;
    mul {t7}, {t2}, {t6};
    selp {dx}, {t7}, {au}, p3;
    mul {t7}, {t3}, {t6};
    selp {dy}, {t7}, {av}, p3;
    mul {t7}, {t4}, {t6};
    selp {dz}, {t7}, {bnu}, p3;
    mad {ox}, {au}, 1e-07, {ox};
    mad {oy}, {av}, 1e-07, {oy};
    mad {oz}, {bnu}, 1e-07, {oz};
""")]
    return "\n".join(pieces)


def _segment_end(write_label: str) -> str:
    """Terminate-or-bounce logic shared by both layouts.

    On entry bt/btri hold the finished segment's hit; leaves a fresh
    segment ready to traverse (falls through) or branches to
    ``write_label``. Draw discipline matches the reference: the depth
    check precedes the roulette draw, the roulette test precedes the
    direction draws.
    """
    return "\n".join([
        _pfmt("""
    setp.lt p1, {btri}, 0;
    @p1 bra WRITE;
    add {bounce}, {bounce}, 1;
    mov {ltri}, {btri};
    mad {ox}, {bt}, {dx}, {ox};
    mad {oy}, {bt}, {dy}, {oy};
    mad {oz}, {bt}, {dz}, {oz};
    ld.const {t0}, [{z}+{MAXD}];
    setp.ge p1, {bounce}, {t0};
    @p1 bra WRITE;
""", MAXD=PATH_CONST_MAX_DEPTH).replace("WRITE", write_label),
        rng_draw("t0"),
        _pfmt("""
    ld.const {t1}, [{z}+{Q}];
    setp.ge p1, {t0}, {t1};
    @p1 bra WRITE;
""", Q=PATH_CONST_ROULETTE_Q).replace("WRITE", write_label),
        _diffuse_bounce(),
        _pfmt("""
    mov {bt}, inf;
    mov {btri}, -1;
"""),
        frag.compute_inverse_direction(),
        _pfmt("""
    mov {sp}, 0;
    mov {node}, 0;
"""),
        frag.slab_test(write_label),
    ])


def pathtrace_source() -> str:
    """The path-tracing megakernel: Example 1 plus an outer bounce loop."""
    pieces = [
        f".kernel {PT_KERNEL_NAME} regs={PT_MEGA_REGISTERS} "
        f"shared=60 local=384 const=128",
        f"{PT_KERNEL_NAME}:",
        frag.load_const_bases(),
        frag.fmt("    mov {rid}, SREG.tid;"),
        frag.load_ray(),
        rng_init(),
        _pfmt("""
    mov {bounce}, 0;
    mov {ltri}, -1;
"""),
        frag.compute_inverse_direction(),
        frag.compute_stack_address(),
        frag.fmt("""
    mov {sp}, 0;
    mov {node}, 0;
"""),
        frag.slab_test("PT_WRITE"),
        """
PT_DOWN:
""",
        frag.load_node_words(),
        frag.fmt("""
    setp.eq p1, {t0}, 3;
    @p1 bra PT_LEAF;
"""),
        frag.down_step(),
        """
    bra PT_DOWN;
PT_LEAF:
""",
        frag.fmt("    mov {t3}, 0;"),
        """
PT_ISECT:
""",
        frag.fmt("""
    setp.ge p1, {t3}, {t1};
    @p1 bra PT_POP;
    add {t4}, {t2}, {t3};
    add {t4}, {t4}, {lb};
    ld.global {t4}, [{t4}+0];
"""),
        frag.triangle_test(),
        frag.fmt("""
    add {t3}, {t3}, 1;
    bra PT_ISECT;
"""),
        """
PT_POP:
""",
        frag.early_exit_test("PT_SEG_END"),
        frag.stack_pop("PT_SEG_END"),
        """
    bra PT_DOWN;
PT_SEG_END:
""",
        _segment_end("PT_WRITE"),
        """
    bra PT_DOWN;
PT_WRITE:
""",
        write_path_result(),
        "    exit;",
    ]
    return "\n".join(pieces)


def _pt_state_restore() -> str:
    """16-word variant of the µ-kernel state restore (four v4 loads)."""
    return _pfmt("""
    mov {t4}, SREG.spawnMemAddr;
    ld.spawnMem {t5}, [{t4}+0];
    ld.spawnMem.v4 {ox}, [{t5}+0];
    ld.spawnMem.v4 {dy}, [{t5}+4];
    ld.spawnMem.v4 {w8}, [{t5}+8];
    ld.spawnMem.v4 {rng}, [{t5}+12];
    and {sp}, {pk}, 31;
    shr {node}, {pk}, 5;
    mov {pk}, {t5};
""")


def _pt_state_save() -> str:
    """16-word variant of the µ-kernel state save (four v4 stores)."""
    return _pfmt("""
    mul {t4}, {node}, 32;
    add {t4}, {t4}, {sp};
    mov {t5}, {pk};
    mov {pk}, {t4};
    st.spawnMem.v4 [{t5}+0], {ox};
    st.spawnMem.v4 [{t5}+4], {dy};
    st.spawnMem.v4 [{t5}+8], {w8};
    st.spawnMem.v4 [{t5}+12], {rng};
""")


def pathtrace_microkernel_source() -> str:
    """The five-µ-kernel path tracer (spawn layout)."""
    pieces = [
        f".kernel pt_primary {_MICRO_DECL}",
        f".kernel pt_traverse {_MICRO_DECL}",
        f".kernel pt_isect {_MICRO_DECL}",
        f".kernel pt_pop {_MICRO_DECL}",
        f".kernel pt_bounce {_MICRO_DECL}",
        # ----------------------------------------------------- pt_primary
        "pt_primary:",
        frag.load_const_bases(),
        frag.fmt("    mov {rid}, SREG.tid;"),
        frag.load_ray(),
        rng_init(),
        _pfmt("""
    mov {bounce}, 0;
    mov {ltri}, -1;
"""),
        frag.compute_inverse_direction(),
        frag.slab_test("PPRIM_WRITE"),
        _pfmt("""
    mov {pk}, 0;
    mov {t5}, SREG.spawnMemAddr;
    st.spawnMem.v4 [{t5}+0], {ox};
    st.spawnMem.v4 [{t5}+4], {dy};
    st.spawnMem.v4 [{t5}+8], {w8};
    st.spawnMem.v4 [{t5}+12], {rng};
    spawn $pt_traverse, {t5};
    exit;
"""),
        "PPRIM_WRITE:",
        write_path_result(),
        "    exit;",
        # ---------------------------------------------------- pt_traverse
        "pt_traverse:",
        _pt_state_restore(),
        frag.load_const_bases(),
        frag.compute_inverse_direction(),
        frag.compute_stack_address(),
        frag.load_node_words(),
        frag.fmt("""
    setp.eq p1, {t0}, 3;
    @p1 bra PTRAV_LEAF;
"""),
        frag.down_step(),
        _pt_state_save(),
        frag.fmt("""
    spawn $pt_traverse, {t5};
    exit;
"""),
        "PTRAV_LEAF:",
        frag.fmt("    mov {w8}, 0;"),
        _pt_state_save(),
        frag.fmt("""
    setp.gt p1, {t1}, 0;
    @p1 spawn $pt_isect, {t5};
    @p1 exit;
    spawn $pt_pop, {t5};
    exit;
"""),
        # ------------------------------------------------------- pt_isect
        "pt_isect:",
        _pt_state_restore(),
        frag.load_const_bases(),
        frag.load_node_words(),
        frag.fmt("""
    setp.ge p1, {w8}, {t1};
    @p1 bra PISECT_NEXT;
    add {t4}, {t2}, {w8};
    add {t4}, {t4}, {lb};
    ld.global {t4}, [{t4}+0];
"""),
        frag.triangle_test(),
        frag.fmt("    add {w8}, {w8}, 1;"),
        "PISECT_NEXT:",
        frag.fmt("    setp.lt p2, {w8}, {t1};"),
        _pt_state_save(),
        frag.fmt("""
    @p2 spawn $pt_isect, {t5};
    @p2 exit;
    spawn $pt_pop, {t5};
    exit;
"""),
        # --------------------------------------------------------- pt_pop
        "pt_pop:",
        _pt_state_restore(),
        frag.load_const_bases(),
        frag.compute_stack_address(),
        frag.early_exit_test("PPOP_SEG"),
        frag.stack_pop("PPOP_SEG"),
        _pt_state_save(),
        frag.fmt("""
    spawn $pt_traverse, {t5};
    exit;
"""),
        # The segment is finished: hand the hit (or miss) to the bounce
        # µ-kernel, which owns termination and shading.
        "PPOP_SEG:",
        _pt_state_save(),
        frag.fmt("""
    spawn $pt_bounce, {t5};
    exit;
"""),
        # ------------------------------------------------------ pt_bounce
        "pt_bounce:",
        _pt_state_restore(),
        frag.load_const_bases(),
        _segment_end("PB_WRITE"),
        _pt_state_save(),
        frag.fmt("""
    spawn $pt_traverse, {t5};
    exit;
"""),
        "PB_WRITE:",
        write_path_result(),
        "    exit;",
    ]
    return "\n".join(pieces)


def pathtrace_program() -> Program:
    """Assemble the path-tracing megakernel."""
    return assemble(pathtrace_source())


def pathtrace_microkernel_program() -> Program:
    """Assemble the path-tracing µ-kernel program."""
    return assemble(pathtrace_microkernel_source())


def pathtrace_launch_spec(num_rays: int, *, block_size: int = 64
                          ) -> LaunchSpec:
    """Launch spec for the megakernel layout (one thread per path)."""
    program = pathtrace_program()
    return LaunchSpec(program=program, entry_kernel=PT_KERNEL_NAME,
                      num_threads=num_rays,
                      registers_per_thread=PT_MEGA_REGISTERS,
                      block_size=block_size)


def pathtrace_microkernel_launch_spec(num_rays: int, *, block_size: int = 32
                                      ) -> LaunchSpec:
    """Launch spec for the spawn layout (warp scheduling assumed)."""
    program = pathtrace_microkernel_program()
    return LaunchSpec(program=program, entry_kernel="pt_primary",
                      num_threads=num_rays,
                      registers_per_thread=PT_MICRO_REGISTERS,
                      block_size=block_size,
                      state_words=PT_STATE_WORDS)
