"""On-chip banked memory (shared memory and spawn memory).

The paper places spawn memory on-chip inside each SM. On-chip memories are
word-interleaved across ``num_banks`` banks; when the lanes of a warp access
more than one address in the same bank, the accesses serialize and the
pipeline stalls for the extra cycles (paper Figure 9). The conflict model
can be disabled to reproduce the paper's "no bank conflicts" assumption
used for Figure 7 ("simulation of future programming models or compiler
optimization designed to eliminate a majority of the bank conflicts").
"""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryError_


class BankedMemory:
    """Functional + timing model for one SM's on-chip memory."""

    def __init__(self, num_words: int, num_banks: int = 16,
                 model_conflicts: bool = True):
        if num_words <= 0:
            raise MemoryError_("on-chip memory size must be positive")
        if num_banks <= 0:
            raise MemoryError_("bank count must be positive")
        self.words = np.zeros(num_words, dtype=np.float64)
        self.num_banks = num_banks
        self.model_conflicts = model_conflicts
        self.read_words = 0
        self.write_words = 0
        self.conflict_cycles = 0

    @property
    def num_words(self) -> int:
        return self.words.shape[0]

    def _check(self, addresses: np.ndarray) -> None:
        if addresses.size == 0:
            return
        lo = int(addresses.min())
        hi = int(addresses.max())
        if lo < 0 or hi >= self.num_words:
            raise MemoryError_(
                f"on-chip access out of range: [{lo}, {hi}] not in "
                f"[0, {self.num_words})")

    def conflict_penalty(self, addresses: np.ndarray) -> int:
        """Extra serialization cycles for this access pattern.

        A warp access completes in one pass when every bank receives at
        most one distinct address (broadcast of a single address is free,
        as on real hardware); otherwise it replays once per extra distinct
        address on the worst bank.
        """
        if not self.model_conflicts or addresses.size <= 1:
            return 0
        addresses = np.asarray(addresses, dtype=np.int64)
        distinct = np.unique(addresses)
        banks = distinct % self.num_banks
        worst = int(np.bincount(banks, minlength=self.num_banks).max())
        return worst - 1

    def read(self, addresses: np.ndarray) -> tuple[np.ndarray, int]:
        """Masked warp read; returns (values, conflict penalty cycles)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        self._check(addresses)
        penalty = self.conflict_penalty(addresses)
        self.conflict_cycles += penalty
        self.read_words += int(addresses.size)
        return self.words[addresses], penalty

    def write(self, addresses: np.ndarray, values: np.ndarray) -> int:
        """Masked warp write; returns conflict penalty cycles."""
        addresses = np.asarray(addresses, dtype=np.int64)
        self._check(addresses)
        penalty = self.conflict_penalty(addresses)
        self.conflict_cycles += penalty
        self.write_words += int(addresses.size)
        self.words[addresses] = values
        return penalty
