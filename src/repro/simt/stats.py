"""Simulation statistics: IPC, divergence breakdown, traffic counters.

The divergence breakdown reproduces the AerialVision plots of Figures 3, 7
and 9: every issued warp instruction is classified by how many of its
``warp_size`` lanes were active, into buckets W1:4, W5:8, ..., W29:32.
Together with idle (no issue) and stall (issue port blocked by bank-conflict
serialization) cycles this gives the paper's 10 categories.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

#: Number of active-lane buckets (paper's W1:4 ... W29:32 for 32-wide warps).
NUM_W_BUCKETS = 8


def _lanes_per_bucket(warp_size: int) -> int:
    """Lanes covered by one W bucket (ceiling so no counts collapse).

    Flooring ``warp_size // NUM_W_BUCKETS`` is wrong for warp sizes that
    are not a multiple of ``NUM_W_BUCKETS``: e.g. warp_size=12 would map
    active counts 8..12 all into the top bucket while the labels claim it
    holds only W8:8. The ceiling keeps every bucket at most
    ``_lanes_per_bucket`` wide and the top bucket exactly ends at
    ``warp_size``; for the paper's power-of-two sizes (4, 8, 16, 32) the
    result is unchanged.
    """
    if warp_size <= 0:
        raise ValueError("warp_size must be positive")
    return max(1, -(-warp_size // NUM_W_BUCKETS))


def w_bucket(active: int, warp_size: int = 32) -> int:
    """Bucket index 0..7 for ``active`` lanes of a ``warp_size`` warp."""
    if active <= 0:
        raise ValueError("an issued warp must have at least one active lane")
    if active > warp_size:
        raise ValueError(f"{active} active lanes exceed warp size {warp_size}")
    per_bucket = _lanes_per_bucket(warp_size)
    return min(NUM_W_BUCKETS - 1, (active - 1) // per_bucket)


def w_labels(warp_size: int = 32) -> list[str]:
    """Bucket labels, e.g. ['W1:4', ..., 'W29:32'].

    Always ``NUM_W_BUCKETS`` labels (histogram arrays have fixed width);
    ranges are clamped to ``warp_size``, so buckets beyond the warp size
    (which can never receive a count) show an empty-by-construction range.
    """
    per_bucket = _lanes_per_bucket(warp_size)
    labels = []
    for b in range(NUM_W_BUCKETS):
        lo = b * per_bucket + 1
        hi = max(lo, min((b + 1) * per_bucket, warp_size))
        labels.append(f"W{lo}:{hi}")
    return labels


W_CATEGORIES = w_labels()


@dataclass
class DivergenceSampler:
    """Time-bucketed warp-occupancy histogram.

    ``window`` cycles per time bucket; each issue adds to the bucket of its
    cycle. ``idle`` counts cycles with no issue; ``stall`` counts cycles the
    issue port was blocked (bank-conflict serialization).
    """

    warp_size: int = 32
    window: int = 1000
    #: One plain-int row of ``NUM_W_BUCKETS`` counters per time window.
    #: Plain lists, not numpy arrays: the hot path increments a single
    #: element per issued instruction, which is ~10x cheaper on a list.
    issues: list[list[int]] = field(default_factory=list)
    idle: list[int] = field(default_factory=list)
    stall: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._per_bucket = _lanes_per_bucket(self.warp_size)

    def _bucket_for(self, cycle: int) -> int:
        index = cycle // self.window
        while len(self.issues) <= index:
            self.issues.append([0] * NUM_W_BUCKETS)
            self.idle.append(0)
            self.stall.append(0)
        return index

    def record_issue(self, cycle: int, active: int) -> None:
        # Inlined w_bucket and window lookup (hot path): the executor
        # guarantees 1 <= active <= warp_size for every issued instruction.
        bucket = (active - 1) // self._per_bucket
        if bucket >= NUM_W_BUCKETS:
            bucket = NUM_W_BUCKETS - 1
        issues = self.issues
        index = cycle // self.window
        if index >= len(issues):
            self._bucket_for(cycle)
        issues[index][bucket] += 1

    def record_idle(self, cycle: int) -> None:
        self.idle[self._bucket_for(cycle)] += 1

    def record_stall(self, cycle: int) -> None:
        self.stall[self._bucket_for(cycle)] += 1

    def _record_span(self, counters: list[int], start: int, stop: int) -> None:
        """Add one count per cycle of [start, stop) to ``counters``,
        split across time windows — equivalent to calling the per-cycle
        recorder once for every skipped cycle, without the loop."""
        if stop <= start:
            return
        self._bucket_for(stop - 1)  # extend lists once
        window = self.window
        index = start // window
        if (stop - 1) // window == index:  # common case: one window
            counters[index] += stop - start
            return
        cycle = start
        while cycle < stop:
            window_end = (index + 1) * window
            count = min(stop, window_end) - cycle
            counters[index] += count
            cycle += count
            index += 1

    def record_idle_span(self, start: int, stop: int) -> None:
        """Credit every cycle of [start, stop) as idle (fast-forward)."""
        self._record_span(self.idle, start, stop)

    def record_stall_span(self, start: int, stop: int) -> None:
        """Credit every cycle of [start, stop) as stalled (fast-forward)."""
        self._record_span(self.stall, start, stop)

    def to_dict(self) -> dict:
        """JSON-compatible snapshot (inverse of :meth:`from_dict`)."""
        return {
            "warp_size": self.warp_size,
            "window": self.window,
            "issues": [list(row) for row in self.issues],
            "idle": list(self.idle),
            "stall": list(self.stall),
        }

    @staticmethod
    def from_dict(data: dict) -> "DivergenceSampler":
        return DivergenceSampler(
            warp_size=data["warp_size"], window=data["window"],
            issues=[list(row) for row in data["issues"]],
            idle=list(data["idle"]), stall=list(data["stall"]))

    def merge(self, other: "DivergenceSampler") -> None:
        """Accumulate another sampler (e.g. from a different SM)."""
        for index in range(len(other.issues)):
            self._bucket_for(index * self.window)
            mine = self.issues[index]
            for bucket, count in enumerate(other.issues[index]):
                mine[bucket] += count
            self.idle[index] += other.idle[index]
            self.stall[index] += other.stall[index]

    def totals(self) -> np.ndarray:
        """Whole-run issue counts per W bucket."""
        if not self.issues:
            return np.zeros(NUM_W_BUCKETS, dtype=np.int64)
        return np.sum(np.asarray(self.issues, dtype=np.int64), axis=0)

    def fractions_over_time(self) -> np.ndarray:
        """(num_windows, NUM_W_BUCKETS+2) rows: [W buckets..., idle, stall].

        Each row is normalized by its window's total cycles accounted, so
        rows are directly comparable to the AerialVision stacked plots.
        """
        rows = []
        for index in range(len(self.issues)):
            counts = np.asarray(
                self.issues[index] + [self.idle[index], self.stall[index]],
                dtype=np.float64)
            total = counts.sum()
            rows.append(counts / total if total else counts)
        if not rows:
            return np.zeros((0, NUM_W_BUCKETS + 2))
        return np.stack(rows)

    def mean_active_lanes(self) -> float:
        """Average active lanes per issued instruction (bucket midpoints)."""
        totals = self.totals()
        if totals.sum() == 0:
            return 0.0
        per_bucket = _lanes_per_bucket(self.warp_size)
        midpoints = np.array([
            (b * per_bucket + 1
             + max(b * per_bucket + 1,
                   min((b + 1) * per_bucket, self.warp_size))) / 2.0
            for b in range(NUM_W_BUCKETS)])
        return float((totals * midpoints).sum() / totals.sum())


@dataclass
class SMStats:
    """Per-SM counters (merged into machine totals by the GPU)."""

    cycles: int = 0
    issued_instructions: int = 0
    committed_thread_instructions: int = 0
    idle_cycles: int = 0
    stall_cycles: int = 0
    warps_launched: int = 0
    warps_completed: int = 0
    threads_launched: int = 0
    threads_exited: int = 0
    spawn_instructions: int = 0
    threads_spawned: int = 0
    full_warps_formed: int = 0
    partial_warps_flushed: int = 0
    uniform_spawn_branches: int = 0
    bank_conflict_cycles: int = 0
    dram_read_bytes: int = 0
    dram_write_bytes: int = 0
    dram_transactions: int = 0
    onchip_read_words: int = 0
    onchip_write_words: int = 0
    rays_completed: int = 0

    def ipc(self) -> float:
        """Committed thread-instructions per cycle for this SM."""
        return (self.committed_thread_instructions / self.cycles
                if self.cycles else 0.0)

    def to_dict(self) -> dict:
        """JSON-compatible snapshot (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "SMStats":
        return SMStats(**data)

    def merge(self, other: "SMStats") -> None:
        self.cycles = max(self.cycles, other.cycles)
        for name in ("issued_instructions", "committed_thread_instructions",
                     "idle_cycles", "stall_cycles", "warps_launched",
                     "warps_completed", "threads_launched", "threads_exited",
                     "spawn_instructions", "threads_spawned",
                     "full_warps_formed", "partial_warps_flushed",
                     "uniform_spawn_branches",
                     "bank_conflict_cycles", "dram_read_bytes",
                     "dram_write_bytes", "dram_transactions",
                     "onchip_read_words", "onchip_write_words",
                     "rays_completed"):
            setattr(self, name, getattr(self, name) + getattr(other, name))
