"""Cycle-level SIMT processor simulator with dynamic µ-kernel support.

The simulator models the paper's machine (Table I) at warp-instruction
granularity: each SM issues at most one warp instruction per cycle, lanes
execute functionally in lockstep under an active mask, PDOM reconvergence
stacks handle branch divergence, and an interleaved DRAM model with
per-module bandwidth provides memory timing. The paper's contribution —
the ``spawn`` instruction, spawn memory, PC-indexed LUT, partial-warp pool
and new-warp FIFO — lives in :mod:`repro.simt.spawn`.
"""

from repro.simt.gpu import GPU, LaunchSpec, RunStats
from repro.simt.memory import DRAM, GlobalMemory
from repro.simt.banked import BankedMemory
from repro.simt.spawn import SpawnUnit
from repro.simt.stack import ReconvergenceStack, StackEntry
from repro.simt.stats import DivergenceSampler, SMStats, W_CATEGORIES
from repro.simt.warp import Warp
from repro.simt.mimd import MIMDResult, mimd_theoretical

__all__ = [
    "BankedMemory",
    "DRAM",
    "DivergenceSampler",
    "GPU",
    "GlobalMemory",
    "LaunchSpec",
    "MIMDResult",
    "ReconvergenceStack",
    "RunStats",
    "SMStats",
    "SpawnUnit",
    "StackEntry",
    "W_CATEGORIES",
    "Warp",
    "mimd_theoretical",
]
