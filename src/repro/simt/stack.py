"""PDOM reconvergence stack (SIMT stack).

Implements the post-dominator reconvergence mechanism of §II / Figure 2:
when the lanes of a warp disagree at a branch, the current stack entry's PC
is set to the branch's immediate post-dominator (keeping the pre-divergence
mask) and one entry per outgoing path is pushed. Execution always proceeds
from the top entry; when its PC reaches its reconvergence PC the entry pops
and the lanes merge back into the entry below.

Each entry caches its active-lane count so the issue path never needs a
numpy reduction to know whether a path is live — the count is maintained at
the only two mutation points (entry creation and :meth:`retire_lanes`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExecutionError
from repro.isa.cfg import RECONV_AT_EXIT


@dataclass
class StackEntry:
    """One control-flow path: next PC, lanes on it, reconvergence PC."""

    pc: int
    mask: np.ndarray
    reconv_pc: int = RECONV_AT_EXIT
    count: int = field(default=-1)
    """Cached ``mask.sum()``; kept in sync by the stack's mutators."""

    def __post_init__(self) -> None:
        if self.count < 0:
            self.count = int(self.mask.sum())


@dataclass
class ReconvergenceStack:
    """The per-warp SIMT stack."""

    entries: list[StackEntry] = field(default_factory=list)
    pushes: int = 0
    pops: int = 0
    """Lifetime entry-creation/removal counts. A warp that has fully
    retired must satisfy ``pushes == pops`` — the conformance fuzzer
    checks this structural invariant on every finished warp."""

    @staticmethod
    def initial(pc: int, mask: np.ndarray) -> "ReconvergenceStack":
        return ReconvergenceStack(
            [StackEntry(pc, mask.copy(), RECONV_AT_EXIT)], pushes=1)

    @property
    def top(self) -> StackEntry:
        if not self.entries:
            raise ExecutionError("reconvergence stack underflow")
        return self.entries[-1]

    @property
    def depth(self) -> int:
        return len(self.entries)

    @property
    def empty(self) -> bool:
        return not self.entries or self.entries[-1].count == 0

    def active_mask(self) -> np.ndarray:
        return self.top.mask

    def active_count(self) -> int:
        return self.top.count

    def advance(self, next_pc: int) -> None:
        """Move the top entry to ``next_pc`` and pop on reconvergence."""
        entries = self.entries
        top = entries[-1]
        top.pc = next_pc
        if len(entries) > 1 and (next_pc == top.reconv_pc or top.count == 0):
            self._pop_reconverged()

    def _pop_reconverged(self) -> None:
        entries = self.entries
        while (len(entries) > 1
               and (entries[-1].pc == entries[-1].reconv_pc
                    or entries[-1].count == 0)):
            entries.pop()
            self.pops += 1

    def diverge(self, taken_mask: np.ndarray, not_taken_mask: np.ndarray,
                target_pc: int, fallthrough_pc: int, reconv_pc: int) -> None:
        """Split the top entry at a divergent branch.

        The top entry keeps the union mask and waits at ``reconv_pc``;
        the not-taken then taken paths are pushed (taken executes first,
        matching PDOM's serialization of control paths).
        """
        top = self.top
        top.pc = reconv_pc if reconv_pc != RECONV_AT_EXIT else fallthrough_pc
        if reconv_pc == RECONV_AT_EXIT:
            # Paths only meet at exit: replace top with the two paths.
            self.entries.pop()
            self.pops += 1
        if not_taken_mask.any():
            self.entries.append(
                StackEntry(fallthrough_pc, not_taken_mask.copy(), reconv_pc))
            self.pushes += 1
        if taken_mask.any():
            self.entries.append(
                StackEntry(target_pc, taken_mask.copy(), reconv_pc))
            self.pushes += 1
        if not self.entries:
            raise ExecutionError("divergence produced an empty stack")
        # A path that starts at the reconvergence point has not really
        # diverged: merge it immediately so it waits for the other path.
        self._pop_reconverged()

    def retire_lanes(self, exit_mask: np.ndarray) -> None:
        """Remove exiting lanes from every entry and drop empty entries."""
        survivors = []
        for entry in self.entries:
            entry.mask = entry.mask & ~exit_mask
            entry.count = int(entry.mask.sum())
            if entry.count:
                survivors.append(entry)
        self.pops += len(self.entries) - len(survivors)
        self.entries = survivors

    def max_depth_reached(self) -> int:
        return len(self.entries)
