"""Batched structure-of-arrays executor backend (``executor="batched"``).

The reference executor (:mod:`repro.simt.executor`) interprets one warp
instruction per issue: every issue pays a Python closure call plus a
handful of warp-wide numpy operations. Most issued instructions, however,
sit inside straight-line runs of simple ALU operations (70–90% of the
dynamic mix for the paper's ray-tracing kernels), and those touch only
warp-private state — registers, predicates and special registers.

This backend exploits that in two moves:

1. **Deferred accounting.** When a warp's next PC starts a precompiled
   run (:func:`repro.isa.blocks.compile_blocks`), the warp is enqueued in
   a machine-wide batch for that run and its next ``k`` issues take a
   cheap accounting-only path: the scheduler-visible effects of each
   issue (issue/commit counters, divergence histogram, probe hooks,
   ``ready_at``, the stack-top PC and the final reconvergence pop) are
   replayed exactly as the reference issue path would, with no functional
   execution and no numpy work at all.
2. **Structure-of-arrays execution.** The run's functional effects are
   executed lazily — when a member warp reaches an instruction that needs
   real register values, or at end of run — as *one* sequence of numpy
   array operations over the concatenated lanes of every enqueued warp,
   across all SMs at once. The per-instruction step closures mirror the
   reference plans' masked-write semantics operation for operation, so
   every lane's float64 result is bit-identical.

Correctness rests on three structural facts, enforced by the block
compiler: run interiors contain no basic-block leaders (so no warp can
enter mid-run and no reconvergence pop can fire before the final issue);
run instructions read and write only warp-private state (so deferral and
cross-warp execution order are unobservable); and the stack-top entry of
a warp inside a run cannot change (every mutation goes through a plan,
and the warp executes none until the run ends).

Everything that is not a run — memory, control flow, spawn, barriers,
isolated ALU instructions — goes through the *unchanged* reference plans,
so the spawn unit, banked memories, DRAM coalescing and snapshot hooks
behave identically by construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError
from repro.isa.blocks import compile_blocks
from repro.obs.constants import WAIT_PIPE
from repro.simt.executor import (
    ALU,
    _BINARY_OPS,
    _COMPARES,
    _UNARY_OPS,
    _imm_array,
    _op_mov,
)
from repro.simt.stats import NUM_W_BUCKETS


class _RunContext:
    """Mutable operand environment for one run execution.

    ``regs``/``preds`` map register indices to stacked rows (``n`` warps
    × ``warp_size`` lanes; for a single-member batch they are the warp's
    own row views, so steps write architectural state in place).
    ``mask`` is the stacked active mask, or None when every member warp
    is fully converged (the reference's unmasked fast path)."""

    __slots__ = ("regs", "preds", "mask", "size", "warp_size", "tids",
                 "spawn_addr", "warpids")


def _compile_run_fetch(operand):
    """Operand fetch over a :class:`_RunContext` (mirrors
    :func:`repro.simt.executor._compile_fetch` value for value)."""
    kind = operand.kind
    if kind == "r":
        index = operand.value
        return lambda ctx: ctx.regs[index]
    if kind == "imm":
        value = operand.value
        return lambda ctx: _imm_array(value, ctx.size)
    if kind == "p":
        index = operand.value
        return lambda ctx: ctx.preds[index].astype(np.float64)
    if kind == "sreg":
        name = operand.value
        if name == "tid":
            return lambda ctx: ctx.tids
        if name == "spawnMemAddr":
            return lambda ctx: ctx.spawn_addr
        if name == "warpid":
            return lambda ctx: ctx.warpids
        if name == "ntid":
            return lambda ctx: _imm_array(float(ctx.warp_size), ctx.size)
        if name == "smid":
            # The reference fetch hardcodes SM id 0 (one program image is
            # shared across SMs); the stacked fetch must match even when
            # members come from different SMs.
            return lambda ctx: _imm_array(0.0, ctx.size)
    raise ExecutionError(f"cannot fetch operand {operand!r}")


def _compile_run_guard(inst):
    """Guard closure over the stacked context, or None when unguarded.

    Always returns a fresh array so a guard never aliases a predicate
    row the step is about to write through ``out=``."""
    if inst.pred is None:
        return None
    index = inst.pred.value
    if inst.pred_neg:
        def guard(ctx):
            taken = ~ctx.preds[index]
            return taken if ctx.mask is None else ctx.mask & taken
        return guard

    def guard(ctx):
        pred = ctx.preds[index]
        return pred.copy() if ctx.mask is None else ctx.mask & pred
    return guard


def _compile_run_step(inst):
    """One instruction's functional effect on a :class:`_RunContext`.

    Returns None for ``nop``. Write semantics follow the reference ALU
    plans exactly: active (guarded) lanes receive the computed value,
    all other lanes keep their previous contents."""
    op = inst.op
    guard = _compile_run_guard(inst)

    if op == "nop":
        return None

    if op == "setp":
        fetch_a = _compile_run_fetch(inst.srcs[0])
        fetch_b = _compile_run_fetch(inst.srcs[1])
        compare = _COMPARES[inst.cmp]
        dst = inst.dst.value

        def step(ctx):
            mask = ctx.mask if guard is None else guard(ctx)
            if mask is None:
                compare(fetch_a(ctx), fetch_b(ctx), out=ctx.preds[dst])
            else:
                compare(fetch_a(ctx), fetch_b(ctx), out=ctx.preds[dst],
                        where=mask)
        return step

    pred_dst = inst.dst.kind == "p"
    dst = inst.dst.value

    if op == "selp":
        fetch_a = _compile_run_fetch(inst.srcs[0])
        fetch_b = _compile_run_fetch(inst.srcs[1])
        chooser = inst.srcs[2].value

        def compute(ctx):
            return np.where(ctx.preds[chooser], fetch_a(ctx), fetch_b(ctx))
    elif op == "mad":
        fetch_a = _compile_run_fetch(inst.srcs[0])
        fetch_b = _compile_run_fetch(inst.srcs[1])
        fetch_c = _compile_run_fetch(inst.srcs[2])
        if not pred_dst:
            def step(ctx):
                mask = ctx.mask if guard is None else guard(ctx)
                if mask is None:
                    np.add(fetch_a(ctx) * fetch_b(ctx), fetch_c(ctx),
                           out=ctx.regs[dst])
                else:
                    np.add(fetch_a(ctx) * fetch_b(ctx), fetch_c(ctx),
                           out=ctx.regs[dst], where=mask)
            return step

        def compute(ctx):
            return fetch_a(ctx) * fetch_b(ctx) + fetch_c(ctx)
    elif len(inst.srcs) == 2:
        fetch_a = _compile_run_fetch(inst.srcs[0])
        fetch_b = _compile_run_fetch(inst.srcs[1])
        fn2 = _BINARY_OPS.get(op)
        if fn2 is None:
            raise ExecutionError(f"unhandled binary op {op!r}")
        if not pred_dst and isinstance(fn2, np.ufunc):
            def step(ctx):
                mask = ctx.mask if guard is None else guard(ctx)
                if mask is None:
                    fn2(fetch_a(ctx), fetch_b(ctx), out=ctx.regs[dst])
                else:
                    fn2(fetch_a(ctx), fetch_b(ctx), out=ctx.regs[dst],
                        where=mask)
            return step

        def compute(ctx):
            return fn2(fetch_a(ctx), fetch_b(ctx))
    else:
        fetch_a = _compile_run_fetch(inst.srcs[0])
        fn1 = _UNARY_OPS.get(op)
        if fn1 is None:
            raise ExecutionError(f"unhandled unary op {op!r}")
        if not pred_dst and fn1 is _op_mov:
            def step(ctx):
                mask = ctx.mask if guard is None else guard(ctx)
                if mask is None:
                    np.copyto(ctx.regs[dst], fetch_a(ctx))
                else:
                    np.copyto(ctx.regs[dst], fetch_a(ctx), where=mask)
            return step
        if not pred_dst and isinstance(fn1, np.ufunc):
            def step(ctx):
                mask = ctx.mask if guard is None else guard(ctx)
                if mask is None:
                    fn1(fetch_a(ctx), out=ctx.regs[dst])
                else:
                    fn1(fetch_a(ctx), out=ctx.regs[dst], where=mask)
            return step

        def compute(ctx):
            return fn1(fetch_a(ctx))

    if pred_dst:
        def step(ctx):
            mask = ctx.mask if guard is None else guard(ctx)
            value = compute(ctx) != 0.0
            if mask is None:
                np.copyto(ctx.preds[dst], value)
            else:
                np.copyto(ctx.preds[dst], value, where=mask)
    else:
        def step(ctx):
            mask = ctx.mask if guard is None else guard(ctx)
            value = compute(ctx)
            if mask is None:
                np.copyto(ctx.regs[dst], value)
            else:
                np.copyto(ctx.regs[dst], value, where=mask)
    return step


class RunKernel:
    """Compiled structure-of-arrays kernel for one run of instructions."""

    __slots__ = ("start", "length", "steps", "reg_ids", "pred_ids",
                 "regs_written", "preds_written", "needs_tids",
                 "needs_spawn_addr", "needs_warpid")

    def __init__(self, program, start: int, length: int):
        self.start = start
        self.length = length
        reg_ids: set[int] = set()
        pred_ids: set[int] = set()
        regs_written: set[int] = set()
        preds_written: set[int] = set()
        self.needs_tids = False
        self.needs_spawn_addr = False
        self.needs_warpid = False
        steps = []
        for pc in range(start, start + length):
            inst = program[pc]
            operands = list(inst.srcs)
            if inst.dst is not None:
                operands.append(inst.dst)
            if inst.pred is not None:
                operands.append(inst.pred)
            for operand in operands:
                if operand.kind == "r":
                    reg_ids.add(operand.value)
                elif operand.kind == "p":
                    pred_ids.add(operand.value)
                elif operand.kind == "sreg":
                    name = operand.value
                    if name == "tid":
                        self.needs_tids = True
                    elif name == "spawnMemAddr":
                        self.needs_spawn_addr = True
                    elif name == "warpid":
                        self.needs_warpid = True
            if inst.dst is not None:
                if inst.dst.kind == "r":
                    regs_written.add(inst.dst.value)
                elif inst.dst.kind == "p":
                    preds_written.add(inst.dst.value)
            step = _compile_run_step(inst)
            if step is not None:
                steps.append(step)
        self.steps = tuple(steps)
        self.reg_ids = tuple(sorted(reg_ids))
        self.pred_ids = tuple(sorted(pred_ids))
        self.regs_written = tuple(sorted(regs_written))
        self.preds_written = tuple(sorted(preds_written))


class RunBatch:
    """Warps waiting on the deferred execution of one run."""

    __slots__ = ("start", "warps", "masks", "counts")

    def __init__(self, start: int):
        self.start = start
        self.warps = []
        self.masks = []
        self.counts = []


class BatchEngine:
    """Machine-wide batching state shared by every SM of one GPU."""

    def __init__(self, program, *, warp_size: int):
        self.program = program
        self.warp_size = warp_size
        self.run_len = list(compile_blocks(program).run_len)
        self._kernels: list[RunKernel | None] = [None] * len(program)
        self._open: dict[int, RunBatch] = {}

    # -- batching ------------------------------------------------------------

    def kernel_for(self, start: int) -> RunKernel:
        kernel = self._kernels[start]
        if kernel is None:
            kernel = RunKernel(self.program, start, self.run_len[start])
            self._kernels[start] = kernel
        return kernel

    def enqueue(self, pc: int, warp, entry) -> None:
        """Add a warp entering the run at ``pc`` to the pending batch."""
        batch = self._open.get(pc)
        if batch is None:
            batch = RunBatch(pc)
            self._open[pc] = batch
        batch.warps.append(warp)
        batch.masks.append(entry.mask)
        batch.counts.append(entry.count)
        warp.run_batch = batch

    def flush_batch(self, batch: RunBatch) -> None:
        """Execute a run's functional effects for every member warp.

        May fire while some members are still mid-accounting: run
        instructions never read architectural state between issues, so
        completing the writes early is unobservable to them."""
        if self._open.get(batch.start) is batch:
            del self._open[batch.start]
        kernel = self.kernel_for(batch.start)
        warps = batch.warps
        for warp in warps:
            warp.run_batch = None
        warp_size = self.warp_size
        ctx = _RunContext()
        ctx.warp_size = warp_size

        if len(warps) == 1:
            # Single-member batch: execute straight on the warp's own row
            # views — no gather/scatter, writes land in place.
            warp = warps[0]
            ctx.size = warp_size
            ctx.regs = warp.reg_rows
            ctx.preds = warp.pred_rows
            ctx.mask = (None if batch.counts[0] == warp_size
                        else batch.masks[0])
            if kernel.needs_tids:
                ctx.tids = warp.tids.astype(np.float64)
            if kernel.needs_spawn_addr:
                ctx.spawn_addr = warp.spawn_addr.astype(np.float64)
            if kernel.needs_warpid:
                ctx.warpids = _imm_array(float(warp.warp_id), warp_size)
            for step in kernel.steps:
                step(ctx)
            return

        ctx.size = len(warps) * warp_size
        full = True
        for count in batch.counts:
            if count != warp_size:
                full = False
                break
        ctx.mask = None if full else np.concatenate(batch.masks)
        regs = {index: np.concatenate([warp.reg_rows[index]
                                       for warp in warps])
                for index in kernel.reg_ids}
        preds = {index: np.concatenate([warp.pred_rows[index]
                                        for warp in warps])
                 for index in kernel.pred_ids}
        ctx.regs = regs
        ctx.preds = preds
        if kernel.needs_tids:
            ctx.tids = np.concatenate(
                [warp.tids for warp in warps]).astype(np.float64)
        if kernel.needs_spawn_addr:
            ctx.spawn_addr = np.concatenate(
                [warp.spawn_addr for warp in warps]).astype(np.float64)
        if kernel.needs_warpid:
            ctx.warpids = np.repeat(
                np.array([float(warp.warp_id) for warp in warps]), warp_size)
        for step in kernel.steps:
            step(ctx)
        for index in kernel.regs_written:
            row = regs[index]
            for position, warp in enumerate(warps):
                np.copyto(warp.reg_rows[index],
                          row[position * warp_size:
                              (position + 1) * warp_size])
        for index in kernel.preds_written:
            row = preds[index]
            for position, warp in enumerate(warps):
                np.copyto(warp.pred_rows[index],
                          row[position * warp_size:
                              (position + 1) * warp_size])

    def flush_all(self) -> None:
        """Drain every pending batch (end of simulation)."""
        pending = self._open
        while pending:
            _, batch = pending.popitem()
            self.flush_batch(batch)

    # -- issue path ----------------------------------------------------------

    def attach(self, sm) -> None:
        """Install the batched issue path on one SM.

        The closure shadows :meth:`repro.simt.sm.SM._issue` via an
        instance attribute; the reference method stays untouched (and
        handles every non-run instruction). Captured locals mirror the
        reference issue path's inlined accounting — keep the two in sync.

        Composition with the calendar scheduler: ``SM.step`` files the
        issuing warp's next wake *after* ``_issue`` returns, reading the
        ``ready_at`` this closure (or the reference path it falls back
        to) just wrote — so shadowing the method never bypasses the wake
        calendar and the two axes compose without knowing about each
        other.
        """
        engine = self
        run_len = self.run_len
        num_pcs = len(run_len)
        reference_issue = sm._issue  # bound class method, captured first
        stats = sm.stats
        divergence = sm.divergence
        per_bucket = divergence._per_bucket
        window = divergence.window
        issues = divergence.issues  # mutated in place, never rebound
        probe = sm.probe
        alu_latency = sm.config.alu_latency

        def issue(warp, cycle: int) -> None:
            left = warp.run_left
            if left:
                # Accounting-only issue of one deferred run instruction:
                # identical scheduler-visible effects to the reference
                # path executing the same simple-ALU plan.
                entry = warp.run_entry
                warp.issued_instructions += 1
                mask = entry.mask
                if mask is warp._commit_mask:
                    warp._commit_count += 1
                else:
                    warp.flush_commits()
                    warp._commit_mask = mask
                    warp._commit_count = 1
                count = entry.count
                stats.issued_instructions += 1
                stats.committed_thread_instructions += count
                bucket = (count - 1) // per_bucket
                if bucket >= NUM_W_BUCKETS:
                    bucket = NUM_W_BUCKETS - 1
                index = cycle // window
                if index >= len(issues):
                    divergence._bucket_for(cycle)
                issues[index][bucket] += 1
                if probe is not None:
                    probe.on_issue(cycle, count, ALU)
                    warp.wait_kind = WAIT_PIPE
                warp.ready_at = cycle + alu_latency
                warp.run_left = left - 1
                next_pc = entry.pc + 1
                entry.pc = next_pc
                if left == 1:
                    # Only the run's last instruction can reach a
                    # reconvergence PC (interior PCs are never leaders).
                    warp.run_entry = None
                    if (next_pc == entry.reconv_pc
                            and len(warp.stack.entries) > 1):
                        warp.stack._pop_reconverged()
                return
            batch = warp.run_batch
            if batch is not None:
                # The warp's deferred writes must land before anything
                # reads its registers — whether the next instruction is
                # a real issue or a new run chained behind the old one.
                engine.flush_batch(batch)
            top = warp.stack.entries[-1]
            pc = top.pc
            if 0 <= pc < num_pcs:
                length = run_len[pc]
                if length > 1 and top.count:
                    warp.run_left = length
                    warp.run_entry = top
                    engine.enqueue(pc, warp, top)
                    issue(warp, cycle)  # account the run's first issue
                    return
            reference_issue(warp, cycle)

        sm._issue = issue
