"""Top-level GPU: SM array, shared memory partition, run loop.

The GPU wires together the per-SM machinery, distributes launch-time thread
blocks round-robin across SMs (as the paper's hardware does), and advances
all SMs cycle by cycle until every thread — including dynamically spawned
ones — has retired, or until ``config.max_cycles`` (the paper simulates the
first 300k cycles only).
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.config import BYTES_PER_WORD, GPUConfig
from repro.errors import ConfigError, SchedulingError, did_you_mean
from repro.isa.cfg import reconvergence_table
from repro.isa.program import KernelInfo, Program
from repro.simt.banked import BankedMemory
from repro.simt.batched import BatchEngine
from repro.simt.executor import MachineState
from repro.simt.memory import DRAM, GlobalMemory
from repro.simt.sm import SM, LaunchBlock
from repro.simt.spawn import SpawnUnit
from repro.simt.stats import DivergenceSampler, SMStats

#: Abort threshold: cycles without any issue across the whole machine.
DEADLOCK_HORIZON = 100_000

#: Schema version of :meth:`RunStats.to_dict` documents.
STATS_VERSION = 1


@dataclass
class LaunchSpec:
    """Everything needed to launch a grid on the machine."""

    program: Program
    entry_kernel: str
    num_threads: int
    registers_per_thread: int
    block_size: int = 64
    state_words: int = 0
    shared_bytes_per_thread: int = 0

    def __post_init__(self) -> None:
        if self.entry_kernel not in self.program.kernels:
            raise ConfigError(f"entry kernel {self.entry_kernel!r} not in program")
        if self.num_threads <= 0:
            raise ConfigError("num_threads must be positive")
        if self.registers_per_thread <= 0:
            raise ConfigError("registers_per_thread must be positive")
        if self.block_size <= 0:
            raise ConfigError("block_size must be positive")
        if self.state_words < 0:
            raise ConfigError("state_words must be non-negative")
        if self.shared_bytes_per_thread < 0:
            raise ConfigError("shared_bytes_per_thread must be non-negative")

    def replace(self, **changes) -> "LaunchSpec":
        """Validated copy: unknown field names raise :class:`ConfigError`
        with a close-match suggestion (``__post_init__`` re-runs, so the
        copy is checked like a fresh spec)."""
        valid = {f.name for f in dataclasses.fields(self)}
        for key in changes:
            if key not in valid:
                raise ConfigError(f"unknown LaunchSpec field {key!r}."
                                  f"{did_you_mean(key, valid)}")
        return dataclasses.replace(self, **changes)

    @property
    def entry_pc(self) -> int:
        return self.program.kernels[self.entry_kernel].entry_pc

    def spawn_kernels(self) -> list[KernelInfo]:
        return self.program.dynamic_spawn_targets()


@dataclass
class RunStats:
    """Aggregated results of one simulation run."""

    config: GPUConfig
    cycles: int
    sm_stats: SMStats
    divergence: DivergenceSampler
    rays_completed: int
    dram_read_bytes: int
    dram_write_bytes: int
    dram_transactions: int
    per_sm: list[SMStats] = field(default_factory=list)
    thread_commits: dict[int, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Machine-wide committed thread-instructions per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.sm_stats.committed_thread_instructions / self.cycles

    @property
    def simt_efficiency(self) -> float:
        """Mean fraction of lanes active per issued warp instruction."""
        issued = self.sm_stats.issued_instructions
        if issued == 0:
            return 0.0
        return (self.sm_stats.committed_thread_instructions
                / (issued * self.config.warp_size))

    def rays_per_second(self, scale_to_sms: int | None = None) -> float:
        """Rays/s at the configured clock, optionally scaled to a larger
        machine (SMs are independent, so per-SM throughput scales
        linearly; see DESIGN.md)."""
        if self.cycles == 0:
            return 0.0
        seconds = self.cycles / (self.config.clock_ghz * 1e9)
        rays = self.rays_completed / seconds
        if scale_to_sms is not None:
            rays *= scale_to_sms / self.config.num_sms
        return rays

    def to_dict(self) -> dict:
        """Versioned, JSON-compatible snapshot of the whole result.

        The inverse is :meth:`from_dict`. Pickling round-trips through the
        same path (``__reduce__``), so sweep workers, the result cache and
        the exporters all exercise one serialization schema — a field
        dropped here shows up as a golden-digest mismatch, not as silent
        data loss.
        """
        return {
            "version": STATS_VERSION,
            "config": self.config.to_dict(),
            "cycles": self.cycles,
            "sm": self.sm_stats.to_dict(),
            "per_sm": [stats.to_dict() for stats in self.per_sm],
            "divergence": self.divergence.to_dict(),
            "rays_completed": self.rays_completed,
            "dram_read_bytes": self.dram_read_bytes,
            "dram_write_bytes": self.dram_write_bytes,
            "dram_transactions": self.dram_transactions,
            "thread_commits": sorted(
                [int(tid), int(count)]
                for tid, count in self.thread_commits.items()),
        }

    @staticmethod
    def from_dict(data: dict) -> "RunStats":
        version = data.get("version")
        if version != STATS_VERSION:
            raise ConfigError(f"unsupported RunStats document version "
                              f"{version!r} (this build reads version "
                              f"{STATS_VERSION})")
        return RunStats(
            config=GPUConfig.from_dict(data["config"]),
            cycles=data["cycles"],
            sm_stats=SMStats.from_dict(data["sm"]),
            divergence=DivergenceSampler.from_dict(data["divergence"]),
            rays_completed=data["rays_completed"],
            dram_read_bytes=data["dram_read_bytes"],
            dram_write_bytes=data["dram_write_bytes"],
            dram_transactions=data["dram_transactions"],
            per_sm=[SMStats.from_dict(stats) for stats in data["per_sm"]],
            thread_commits={int(tid): int(count)
                            for tid, count in data["thread_commits"]})

    def __reduce__(self):
        return (RunStats.from_dict, (self.to_dict(),))


class GPU:
    """The simulated machine."""

    def __init__(self, config: GPUConfig, launch: LaunchSpec,
                 global_mem: GlobalMemory, const_mem: np.ndarray | None = None,
                 divergence_window: int | None = None, trace=None):
        config.validate()
        self.config = config
        self.launch = launch
        self.global_mem = global_mem
        self.const_mem = (np.zeros(1) if const_mem is None
                          else np.asarray(const_mem, dtype=np.float64))
        self.dram = DRAM(config.memory)
        #: Optional :class:`repro.obs.TraceSession`; probes fan out to the
        #: SMs, spawn units and DRAM below. None means zero instrumentation
        #: overhead (every hook sits behind an ``is not None`` check).
        self.trace = trace
        if trace is not None:
            trace.configure(config)
            self.dram.probe = trace
        self.program = launch.program
        self._reconv = reconvergence_table(self.program)
        #: Machine-wide structure-of-arrays batching engine, shared by all
        #: SMs; None under the reference executor.
        self.engine = None
        if config.executor == "batched":
            self.engine = BatchEngine(self.program,
                                      warp_size=config.warp_size)
        window = divergence_window or max(1, config.max_cycles // 100)
        self.sms = [self._build_sm(sm_id, window)
                    for sm_id in range(config.num_sms)]
        self._distribute_blocks()
        self.cycle = 0

    # -- construction ----------------------------------------------------------

    def _occupancy(self) -> tuple[int, int, int]:
        """(max_warps, warps_per_block, max_blocks) for this launch."""
        config = self.config
        launch = self.launch
        warp_size = config.warp_size
        warps_by_threads = config.max_threads_per_sm // warp_size
        regs_per_warp = launch.registers_per_thread * warp_size
        warps_by_regs = config.registers_per_sm // regs_per_warp
        warps_per_block = max(1, math.ceil(launch.block_size / warp_size))
        if config.scheduling == "block":
            blocks_by_threads = warps_by_threads // warps_per_block
            blocks_by_regs = warps_by_regs // warps_per_block
            max_blocks = min(config.max_blocks_per_sm, blocks_by_threads,
                             blocks_by_regs)
            return max_blocks * warps_per_block, warps_per_block, max_blocks
        max_warps = min(warps_by_threads, warps_by_regs)
        return max_warps, warps_per_block, config.max_blocks_per_sm

    def _spawn_layout(self, max_warps: int) -> dict | None:
        """Size the spawn memory space (paper §IV-A) or None if disabled."""
        config = self.config
        launch = self.launch
        if not config.spawn.enabled:
            return None
        spawn_kernels = launch.spawn_kernels()
        if not spawn_kernels:
            raise ConfigError("spawn enabled but the program has no spawn "
                              "targets")
        state_words = max([launch.state_words]
                          + [k.state_words for k in spawn_kernels])
        if state_words <= 0:
            raise ConfigError("spawn requires a positive state size")
        threads_per_sm = max_warps * config.warp_size
        data_words = threads_per_sm * state_words
        # size = NumThreads + (SpawnLocations - 1) * WarpSize, doubled (§IV-A2).
        formation_words = 2 * (threads_per_sm
                               + (len(spawn_kernels) - 1) * config.warp_size)
        # Round the formation region to whole warps for the allocator.
        formation_words = math.ceil(formation_words / config.warp_size
                                    ) * config.warp_size
        total_bytes = (data_words + formation_words) * BYTES_PER_WORD
        if total_bytes > config.onchip_memory_bytes:
            raise ConfigError(
                f"spawn memory ({total_bytes} B) exceeds on-chip memory "
                f"({config.onchip_memory_bytes} B); the paper would spill "
                f"to device memory — reduce threads or state size")
        return {
            "state_words": state_words,
            "num_data_slots": threads_per_sm,
            "data_words": data_words,
            "formation_words": formation_words,
            "spawn_kernels": spawn_kernels,
            "total_bytes": total_bytes,
        }

    def _build_sm(self, sm_id: int, divergence_window: int) -> SM:
        config = self.config
        launch = self.launch
        max_warps, warps_per_block, max_blocks = self._occupancy()
        if max_warps <= 0:
            raise ConfigError("kernel register requirements allow zero warps")
        layout = self._spawn_layout(max_warps)
        shared_words = config.onchip_memory_bytes // BYTES_PER_WORD
        shared_mem = BankedMemory(max(shared_words, 1),
                                  num_banks=config.spawn.num_banks,
                                  model_conflicts=False)
        spawn_unit = None
        spawn_mem = shared_mem
        if layout is not None:
            spawn_words = layout["data_words"] + layout["formation_words"]
            spawn_mem = BankedMemory(
                spawn_words, num_banks=config.spawn.num_banks,
                model_conflicts=config.spawn.bank_conflicts)
            spawn_unit = SpawnUnit(
                spawn_mem, warp_size=config.warp_size,
                data_base=0, num_data_slots=layout["num_data_slots"],
                state_words=layout["state_words"],
                formation_base=layout["data_words"],
                formation_words=layout["formation_words"],
                kernels=layout["spawn_kernels"])
        machine = MachineState(
            program=self.program, global_mem=self.global_mem,
            const_mem=self.const_mem, shared_mem=shared_mem,
            spawn_mem=spawn_mem, reconv_table=self._reconv)
        num_regs = max(self.program.max_register_index() + 1,
                       launch.registers_per_thread)
        probe = None if self.trace is None else self.trace.sm_probe(sm_id)
        sm = SM(sm_id, config, machine, self.dram,
                entry_pc=launch.entry_pc, num_regs=num_regs,
                max_warps=max_warps, warps_per_block=warps_per_block,
                max_blocks=max_blocks, spawn_unit=spawn_unit,
                divergence_window=divergence_window, probe=probe)
        if self.engine is not None:
            self.engine.attach(sm)
        return sm

    def _distribute_blocks(self) -> None:
        """Round-robin launch blocks (contiguous thread ids) over SMs."""
        config = self.config
        launch = self.launch
        warp_size = config.warp_size
        block_size = launch.block_size
        num_blocks = math.ceil(launch.num_threads / block_size)
        for block_id in range(num_blocks):
            first = block_id * block_size
            last = min(first + block_size, launch.num_threads)
            block = LaunchBlock(block_id=block_id)
            for warp_first in range(first, last, warp_size):
                warp_last = min(warp_first + warp_size, last)
                tids = np.arange(warp_first, warp_first + warp_size,
                                 dtype=np.int64)
                active = np.zeros(warp_size, dtype=bool)
                active[:warp_last - warp_first] = True
                tids[warp_last - warp_first:] = -1
                block.warps.append((tids, active, warp_last - warp_first))
            self.sms[block_id % len(self.sms)].enqueue_block(block)

    # -- run loop ----------------------------------------------------------------

    def run(self, max_cycles: int | None = None) -> RunStats:
        """Simulate until completion or the cycle budget; returns stats."""
        budget = max_cycles if max_cycles is not None else self.config.max_cycles
        last_progress = self.cycle
        # Kernels lean on IEEE semantics (inf - inf, 0 * inf, 1/0) for
        # branch-free hit tests; silence the corresponding numpy warnings
        # for the whole run instead of per instruction.
        with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
            self._run_loop(budget, last_progress)
            if self.engine is not None:
                # Warps parked mid-run at the cycle budget still owe their
                # deferred register writes (snapshots read them).
                self.engine.flush_all()
        return self.collect_stats()

    def _run_loop(self, budget: int, last_progress: int) -> None:
        fast = self.config.fast_forward
        if fast and len(self.sms) > 1 and self.config.scheduler == "calendar":
            # The calendar scheduler generalizes _fast_forward from
            # "nobody progressed" spans to per-SM skipping: a min-heap of
            # per-SM wake cycles steps only SMs that can act, even while
            # other SMs stay busy. On one SM the two coincide, so the
            # specialized loop below serves both schedulers there.
            self._run_calendar_loop(budget, last_progress)
            return
        if len(self.sms) == 1:
            # Specialized single-SM loop: same visible behaviour as the
            # generic loop below, without the per-cycle list iteration,
            # flag bookkeeping and duplicated done checks.
            sm = self.sms[0]
            cycle = self.cycle
            while cycle < budget:
                progressed = sm.step(cycle)
                if progressed:
                    last_progress = cycle
                elif sm.done:
                    break
                elif cycle - last_progress > DEADLOCK_HORIZON:
                    self.cycle = cycle
                    raise SchedulingError(
                        f"no instruction issued for {DEADLOCK_HORIZON} "
                        f"cycles (cycle {cycle}); simulation is deadlocked")
                cycle += 1
                if fast and not progressed and cycle < budget:
                    self.cycle = cycle
                    self._fast_forward(budget, last_progress)
                    cycle = self.cycle
            self.cycle = cycle
            return
        while self.cycle < budget:
            progressed = False
            alive = False
            for sm in self.sms:
                if sm.done:
                    continue
                alive = True
                if sm.step(self.cycle):
                    progressed = True
            if not alive:
                break
            if progressed:
                last_progress = self.cycle
            elif self.cycle - last_progress > DEADLOCK_HORIZON:
                raise SchedulingError(
                    f"no instruction issued for {DEADLOCK_HORIZON} cycles "
                    f"(cycle {self.cycle}); simulation is deadlocked")
            self.cycle += 1
            if fast and not progressed and self.cycle < budget:
                self._fast_forward(budget, last_progress)

    def _fast_forward(self, budget: int, last_progress: int) -> None:
        """Jump the clock to the machine's next event (event-driven mode).

        The target is the earliest cycle any SM could issue or change
        state, capped at the cycle budget and at the deadlock horizon so
        the exact-mode deadlock diagnosis fires at the same cycle. The
        skipped span is credited per SM to the idle/stall counters, which
        keeps every statistic bit-identical to ticking cycle by cycle.
        """
        target: int | None = None
        for sm in self.sms:
            event = sm.next_event_time(self.cycle)
            if event is not None and (target is None or event < target):
                target = event
        cap = min(budget, last_progress + DEADLOCK_HORIZON + 1)
        target = cap if target is None else min(target, cap)
        if target > self.cycle:
            for sm in self.sms:
                sm.credit_skipped(self.cycle, target)
            self.cycle = target

    def _run_calendar_loop(self, budget: int, last_progress: int) -> None:
        """Event-driven multi-SM loop (``scheduler="calendar"``).

        A min-heap of ``(wake_cycle, sm_id)`` holds each live SM's next
        event: the clock jumps straight to the heap minimum and steps only
        the SMs due there (in ``sm_id`` order, matching the per-cycle
        loop's iteration order — the shared DRAM model is order
        sensitive). Per-SM skipped spans are credited lazily through
        :meth:`~repro.simt.sm.SM.credit_skipped` the moment the SM next
        steps, so an SM idle for a thousand cycles while a sibling stays
        busy costs one span credit instead of a thousand no-issue steps.
        Wake times are sound for the same reason ``next_event_time`` is:
        nothing outside an SM's own issues can change its schedulable
        state. Budget exit, final ``self.cycle`` and the deadlock
        diagnosis (cycle and message) replicate the per-cycle loop
        exactly.
        """
        if self.cycle >= budget:
            return
        sms = self.sms
        heap: list[tuple[int, int]] = []
        credited: dict[int, int] = {}
        for sm in sms:
            if not sm.done:
                credited[sm.sm_id] = self.cycle
                heap.append((self.cycle, sm.sm_id))
        heapq.heapify(heap)
        while credited:
            cap = min(budget, last_progress + DEADLOCK_HORIZON + 1)
            target = min(heap[0][0], cap) if heap else cap
            if target >= budget:
                for sm_id, start in credited.items():
                    sms[sm_id].credit_skipped(start, budget)
                self.cycle = budget
                return
            progressed = False
            while heap and heap[0][0] <= target:
                sm_id = heapq.heappop(heap)[1]
                sm = sms[sm_id]
                start = credited[sm_id]
                if start < target:
                    sm.credit_skipped(start, target)
                if sm.step(target):
                    progressed = True
                    if sm._admission_dirty or sm._ready_mask:
                        # The issue re-armed admission (freed slots or
                        # formed warps may admit next cycle) or another
                        # warp is already eligible: the SM can act at the
                        # very next cycle.
                        wake = target + 1
                    else:
                        # Nothing eligible and admission provably blocked
                        # until this SM issues again: sleep until the next
                        # warp wake instead of burning a no-issue step at
                        # target + 1 (latency-bound SMs spend most wakes
                        # here).
                        wake = sm.next_event_time(target + 1)
                else:
                    wake = sm.next_event_time(target + 1)
                credited[sm_id] = target + 1
                if sm.done:
                    del credited[sm_id]
                elif wake is not None:
                    heapq.heappush(heap, (wake, sm_id))
                # A None wake is a quiescent SM: it can never act again,
                # but keeps accruing idle time until budget or deadlock.
            if progressed:
                last_progress = target
            elif target - last_progress > DEADLOCK_HORIZON:
                for sm_id, start in credited.items():
                    sms[sm_id].credit_skipped(start, target + 1)
                self.cycle = target
                raise SchedulingError(
                    f"no instruction issued for {DEADLOCK_HORIZON} cycles "
                    f"(cycle {self.cycle}); simulation is deadlocked")
            self.cycle = target + 1

    def collect_stats(self) -> RunStats:
        if self.trace is not None:
            self.trace.finalize(self.cycle)  # idempotent
        total = SMStats()
        divergence = DivergenceSampler(
            warp_size=self.config.warp_size,
            window=self.sms[0].divergence.window)
        per_sm = []
        thread_commits: dict[int, int] = {}
        for sm in self.sms:
            total.merge(sm.stats)
            divergence.merge(sm.divergence)
            per_sm.append(sm.stats)
            for warp in sm.warps:  # warps still in flight at the cycle cap
                sm.record_thread_commits(warp)
                warp.lane_commits[:] = 0
            for tid, count in sm.thread_commits.items():
                thread_commits[tid] = thread_commits.get(tid, 0) + count
        total.cycles = self.cycle
        total.dram_read_bytes = self.dram.read_bytes
        total.dram_write_bytes = self.dram.write_bytes
        total.dram_transactions = self.dram.transactions
        return RunStats(
            config=self.config, cycles=self.cycle, sm_stats=total,
            divergence=divergence,
            rays_completed=self.global_mem.rays_completed,
            dram_read_bytes=self.dram.read_bytes,
            dram_write_bytes=self.dram.write_bytes,
            dram_transactions=self.dram.transactions,
            per_sm=per_sm, thread_commits=thread_commits)

    @property
    def done(self) -> bool:
        return all(sm.done for sm in self.sms)
