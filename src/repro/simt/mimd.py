"""MIMD theoretical performance model (paper Figure 10).

The paper's "MIMD Theoretical" bar is the performance of the same scalar
threads on a hypothetical machine with no lockstep constraint and an ideal
memory system: every lane fetches independently, so processor time is
bounded only by each thread's own dynamic instruction count and by total
lane throughput. For a machine with ``L = num_sms * warp_size`` lanes and
per-thread dynamic instruction counts ``n_i``, the makespan under any
work-conserving scheduler is bounded below by

    max( ceil(sum(n_i) / L), max(n_i) )

and list scheduling achieves within one thread of this bound, so we use the
bound itself as the theoretical optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.config import GPUConfig
from repro.errors import ConfigError


@dataclass(frozen=True)
class MIMDResult:
    """Theoretical MIMD execution of a thread population."""

    num_threads: int
    total_instructions: int
    max_thread_instructions: int
    lanes: int
    cycles: int

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.total_instructions / self.cycles

    def rays_per_second(self, config: GPUConfig,
                        scale_to_sms: int | None = None) -> float:
        if self.cycles == 0:
            return 0.0
        seconds = self.cycles / (config.clock_ghz * 1e9)
        rays = self.num_threads / seconds
        if scale_to_sms is not None:
            rays *= scale_to_sms / config.num_sms
        return rays


def mimd_theoretical(thread_instructions: np.ndarray,
                     config: GPUConfig) -> MIMDResult:
    """Theoretical MIMD makespan for per-thread instruction counts."""
    counts = np.asarray(thread_instructions, dtype=np.int64)
    if counts.size == 0 or np.any(counts < 0):
        raise ConfigError("thread_instructions must be non-empty and "
                          "non-negative")
    lanes = config.num_sms * config.warp_size
    total = int(counts.sum())
    longest = int(counts.max())
    cycles = max(math.ceil(total / lanes), longest)
    return MIMDResult(num_threads=int(counts.size),
                      total_instructions=total,
                      max_thread_instructions=longest,
                      lanes=lanes, cycles=cycles)
