"""Functional execution of one warp instruction (lane-vectorized).

The executor applies an instruction to every active lane of a warp using
masked numpy operations, updates the SIMT stack for control flow, and
returns an :class:`IssueResult` describing the timing-relevant side effects
(memory addresses to coalesce, bank-conflict penalties, spawn requests,
lane exits) that the SM turns into latency.

Decode happens once per static instruction, not once per issue: the first
time a PC is executed the instruction is *compiled* into a closure (a
"plan") that has already resolved the opcode dispatch, operand fetchers,
guard predicate, and reconvergence metadata. Plans are cached on the
:class:`MachineState` (indexed by PC) so the per-issue cost is just the
closure call plus the numpy work itself. Immediate operands are served
from a process-wide read-only array cache keyed by (type, value, width) —
warp widths vary because DWF builds transient issue groups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExecutionError
from repro.isa.instructions import Instruction
from repro.simt.warp import FINISHED, Warp

#: IssueResult.kind values.
ALU = "alu"
OFFCHIP = "offchip"
ONCHIP = "onchip"
SPAWN = "spawn"
CONTROL = "control"
BARRIER = "barrier"

#: Every kind, in instruction-mix reporting order (see repro.obs).
ISSUE_KINDS = (ALU, CONTROL, ONCHIP, OFFCHIP, SPAWN, BARRIER)

_EMPTY_I64 = np.zeros(0, dtype=np.int64)
_EMPTY_I64.setflags(write=False)


@dataclass(slots=True)
class SpawnRequest:
    """Active lanes asking to create children for one µ-kernel."""

    kernel_name: str
    target_pc: int
    pointers: np.ndarray  # spawn-memory pointers, one per spawning lane


@dataclass(slots=True)
class IssueResult:
    """Timing-relevant outcome of issuing one warp instruction."""

    kind: str
    active: int
    addresses: np.ndarray | None = None
    is_store: bool = False
    space: str | None = None
    conflict_penalty: int = 0
    spawn: SpawnRequest | None = None
    completions: int = 0
    exited_lanes: int = 0
    warp_finished: bool = False
    onchip_words: int = 0
    freed_data_addresses: np.ndarray = field(
        default_factory=lambda: _EMPTY_I64)
    """Spawn-memory thread-data slots released by exiting thread chains
    (threads that exit without having spawned a child; paper §IV-A1)."""
    simple: bool = False
    """True for the shared cached ALU/CONTROL results: the only effect on
    the SM is ``ready_at = cycle + alu_latency`` (no exits, completions,
    freed slots, stalls, or retirement), letting the issue path skip the
    side-effect bookkeeping entirely."""


class MachineState:
    """Functional state an executor needs: memories + program metadata.

    Also owns the per-PC compiled plan cache (see module docstring)."""

    def __init__(self, program, global_mem, const_mem, shared_mem, spawn_mem,
                 reconv_table):
        self.program = program
        self.global_mem = global_mem
        self.const_mem = const_mem
        self.shared_mem = shared_mem
        self.spawn_mem = spawn_mem
        self.reconv_table = reconv_table
        self.plans: list = [None] * len(program)
        self.snapshot = None
        """Optional architectural-state snapshot hook (see
        :class:`repro.simt.snapshot.SnapshotRecorder`). When attached, the
        exit plan reports each retiring lane's final register file and the
        finished warp's stack counters; None (the default) keeps the hot
        path branch-predictable and allocation-free."""

    def plan_for(self, pc: int):
        plan = _compile(self.program[pc], self)
        self.plans[pc] = plan
        return plan


def _int64(values: np.ndarray) -> np.ndarray:
    return values.astype(np.int64)


def _op_div(a, b):
    with np.errstate(divide="ignore", invalid="ignore"):
        return a / b


def _op_rem(a, b):
    ib = _int64(b)
    safe = np.where(ib == 0, 1, ib)
    return np.where(ib == 0, 0, _int64(a) % safe).astype(np.float64)


def _op_and(a, b):
    return (_int64(a) & _int64(b)).astype(np.float64)


def _op_or(a, b):
    return (_int64(a) | _int64(b)).astype(np.float64)


def _op_xor(a, b):
    return (_int64(a) ^ _int64(b)).astype(np.float64)


def _op_shl(a, b):
    return (_int64(a) << _int64(b)).astype(np.float64)


def _op_shr(a, b):
    return (_int64(a) >> _int64(b)).astype(np.float64)


_BINARY_OPS = {
    "add": np.add, "sub": np.subtract, "mul": np.multiply, "div": _op_div,
    "min": np.minimum, "max": np.maximum, "rem": _op_rem, "and": _op_and,
    "or": _op_or, "xor": _op_xor, "shl": _op_shl, "shr": _op_shr,
}


def _op_mov(a):
    return a


def _op_not(a):
    return (~_int64(a)).astype(np.float64)


def _op_rcp(a):
    with np.errstate(divide="ignore"):
        return 1.0 / a


def _op_sqrt(a):
    with np.errstate(invalid="ignore"):
        return np.sqrt(a)


def _op_rsqrt(a):
    with np.errstate(divide="ignore", invalid="ignore"):
        return 1.0 / np.sqrt(a)


_UNARY_OPS = {
    "mov": _op_mov, "neg": np.negative, "abs": np.abs, "not": _op_not,
    "rcp": _op_rcp, "sqrt": _op_sqrt, "rsqrt": _op_rsqrt, "floor": np.floor,
    "cvt": np.trunc,
}


def _binary_op(op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    fn = _BINARY_OPS.get(op)
    if fn is None:
        raise ExecutionError(f"unhandled binary op {op!r}")
    return fn(a, b)


def _unary_op(op: str, a: np.ndarray) -> np.ndarray:
    fn = _UNARY_OPS.get(op)
    if fn is None:
        raise ExecutionError(f"unhandled unary op {op!r}")
    return fn(a)


_COMPARES = {
    "lt": np.less, "le": np.less_equal, "gt": np.greater,
    "ge": np.greater_equal, "eq": np.equal, "ne": np.not_equal,
}

#: Read-only replicated immediates keyed by (type, value, width); typed so
#: ``np.full(n, 1)`` (int64) and ``np.full(n, 1.0)`` (float64) stay distinct.
#: Float zeros additionally key on their sign: ``-0.0 == 0.0`` (same hash),
#: but ``1.0 / -0.0`` is ``-inf`` while ``1.0 / 0.0`` is ``+inf``, so letting
#: the two zeros share a cache slot would make results depend on which sign
#: was interned first.
_IMM_CACHE: dict = {}


def _imm_array(value, size: int) -> np.ndarray:
    key = (type(value), value, size)
    if isinstance(value, float) and value == 0.0:
        key += (math.copysign(1.0, value),)
    arr = _IMM_CACHE.get(key)
    if arr is None:
        arr = np.full(size, value)
        arr.setflags(write=False)
        _IMM_CACHE[key] = arr
    return arr


def _replicated_fetch(value):
    """Per-plan inline cache of a replicated constant; keyed only on the
    warp width (constant for a GPU run, variable for DWF issue groups)."""
    last_size = -1
    last_arr = None

    def fetch(warp: Warp) -> np.ndarray:
        nonlocal last_size, last_arr
        size = warp.warp_size
        if size != last_size:
            last_arr = np.full(size, value)
            last_arr.setflags(write=False)
            last_size = size
        return last_arr
    return fetch


def _compile_fetch(operand):
    """Resolve an operand into a ``fetch(warp) -> ndarray`` closure."""
    kind = operand.kind
    if kind == "r":
        index = operand.value
        return lambda warp: warp.reg_rows[index]
    if kind == "imm":
        return _replicated_fetch(operand.value)
    if kind == "p":
        index = operand.value
        return lambda warp: warp.pred_rows[index].astype(np.float64)
    if kind == "sreg":
        name = operand.value
        if name == "tid":
            return lambda warp: warp.tids.astype(np.float64)
        if name == "spawnMemAddr":
            return lambda warp: warp.spawn_addr.astype(np.float64)
        if name == "warpid":
            return lambda warp: _imm_array(float(warp.warp_id),
                                           warp.warp_size)
        if name == "ntid":
            return lambda warp: _imm_array(float(warp.warp_size),
                                           warp.warp_size)
        if name == "smid":
            return _replicated_fetch(0.0)
    raise ExecutionError(f"cannot fetch operand {operand!r}")


def _fetch(warp: Warp, operand) -> np.ndarray:
    """Uncompiled operand fetch (kept for direct use in tests)."""
    return _compile_fetch(operand)(warp)


class _ResultCache(dict):
    """Shared immutable IssueResults keyed by active count, filled on first
    miss. An ALU or control result depends only on the count, so plans index
    these dicts directly (``_ALU_RESULTS[count]``) with no helper call.
    Treat cached instances as frozen — the SM only ever reads them."""

    def __init__(self, kind: str):
        super().__init__()
        self._kind = kind

    def __missing__(self, count: int) -> IssueResult:
        result = self[count] = IssueResult(kind=self._kind, active=count,
                                           simple=True)
        return result


_ALU_RESULTS = _ResultCache(ALU)
_CONTROL_RESULTS = _ResultCache(CONTROL)


def _compile_guard(inst: Instruction):
    """Guard-predicate closure, or None when the instruction is unguarded
    (callers then use the active mask directly, saving an allocation)."""
    if inst.pred is None:
        return None
    index = inst.pred.value
    if inst.pred_neg:
        return lambda warp, active: active & ~warp.pred_rows[index]
    return lambda warp, active: active & warp.pred_rows[index]


def execute(warp: Warp, machine: MachineState) -> IssueResult:
    """Execute the instruction at the warp's PC; returns its IssueResult."""
    entries = warp.stack.entries
    if not entries:
        raise ExecutionError("reconvergence stack underflow")
    top = entries[-1]
    pc = top.pc
    plans = machine.plans
    if not 0 <= pc < len(plans):
        raise ExecutionError("PC outside program", pc=pc)
    if warp.status == FINISHED or top.count == 0:
        raise ExecutionError("issued a warp with no active lanes", pc=pc)
    warp.issued_instructions += 1
    # Batched per-lane commit accounting: consecutive issues under the
    # same mask object fold into one count (see Warp.lane_commits).
    mask = top.mask
    if mask is warp._commit_mask:
        warp._commit_count += 1
    else:
        warp.flush_commits()
        warp._commit_mask = mask
        warp._commit_count = 1
    plan = plans[pc]
    if plan is None:
        plan = machine.plan_for(pc)
    return plan(warp, top)


# -- plan compilation ---------------------------------------------------------


def _compile(inst: Instruction, machine: MachineState):
    """Build the issue closure for one static instruction."""
    op = inst.op
    if op == "bra":
        return _compile_branch(inst, machine)
    if op == "exit":
        return _compile_exit(inst, machine)
    if op in ("ld", "st"):
        return _compile_memory(inst, machine)
    if op == "atom":
        return _compile_atomic(inst, machine)
    if op == "bar":
        return _compile_bar(inst)
    if op == "spawn":
        return _compile_spawn(inst, machine)
    return _compile_alu(inst)


def _compile_alu(inst: Instruction):
    op = inst.op
    next_pc = inst.pc + 1
    guard = _compile_guard(inst)

    if op == "nop":
        def plan(warp: Warp, top) -> IssueResult:
            top.pc = next_pc
            if next_pc == top.reconv_pc and len(warp.stack.entries) > 1:
                warp.stack._pop_reconverged()
            return _ALU_RESULTS[top.count]
        return plan

    if op == "setp":
        fetch_a = _compile_fetch(inst.srcs[0])
        fetch_b = _compile_fetch(inst.srcs[1])
        compare = _COMPARES[inst.cmp]
        dst = inst.dst.value

        # Comparison ufuncs write the predicate row in place; masked-out
        # lanes keep their previous value, matching dest[mask] = res[mask].
        # A fully-populated unguarded warp skips the where= machinery:
        # writing every lane is identical and measurably cheaper. NaN
        # comparisons are quiet because both run loops (GPU and DWF)
        # execute plans under a blanket np.errstate(invalid="ignore").
        def plan(warp: Warp, top) -> IssueResult:
            count = top.count
            if guard is None:
                if count == warp.warp_size:
                    compare(fetch_a(warp), fetch_b(warp),
                            out=warp.pred_rows[dst])
                else:
                    compare(fetch_a(warp), fetch_b(warp),
                            out=warp.pred_rows[dst], where=top.mask)
            else:
                compare(fetch_a(warp), fetch_b(warp),
                        out=warp.pred_rows[dst],
                        where=guard(warp, top.mask))
            top.pc = next_pc
            if next_pc == top.reconv_pc and len(warp.stack.entries) > 1:
                warp.stack._pop_reconverged()
            return _ALU_RESULTS[count]
        return plan

    if op == "selp":
        fetch_a = _compile_fetch(inst.srcs[0])
        fetch_b = _compile_fetch(inst.srcs[1])
        chooser = inst.srcs[2].value

        # Fused select: copy the not-taken value then overwrite the taken
        # lanes, skipping np.where's temporary. Requires that the first
        # source does not alias the destination (it is read second).
        if (inst.dst.kind != "p"
                and not (inst.srcs[0].kind == "r"
                         and inst.srcs[0].value == inst.dst.value)):
            dst = inst.dst.value

            def plan(warp: Warp, top) -> IssueResult:
                count = top.count
                dest = warp.reg_rows[dst]
                pred = warp.pred_rows[chooser]
                if guard is None and count == warp.warp_size:
                    np.copyto(dest, fetch_b(warp))
                    np.copyto(dest, fetch_a(warp), where=pred)
                else:
                    mask = (top.mask if guard is None
                            else guard(warp, top.mask))
                    np.copyto(dest,
                              np.where(pred, fetch_a(warp), fetch_b(warp)),
                              where=mask)
                top.pc = next_pc
                if next_pc == top.reconv_pc and len(warp.stack.entries) > 1:
                    warp.stack._pop_reconverged()
                return _ALU_RESULTS[count]
            return plan

        def compute(warp: Warp) -> np.ndarray:
            return np.where(warp.pred_rows[chooser], fetch_a(warp),
                            fetch_b(warp))
    elif op == "mad":
        fetch_a = _compile_fetch(inst.srcs[0])
        fetch_b = _compile_fetch(inst.srcs[1])
        fetch_c = _compile_fetch(inst.srcs[2])
        dst = inst.dst.value
        if inst.dst.kind != "p":
            def plan(warp: Warp, top) -> IssueResult:
                count = top.count
                if guard is None:
                    if count == warp.warp_size:
                        np.add(fetch_a(warp) * fetch_b(warp), fetch_c(warp),
                               out=warp.reg_rows[dst])
                    else:
                        np.add(fetch_a(warp) * fetch_b(warp), fetch_c(warp),
                               out=warp.reg_rows[dst], where=top.mask)
                else:
                    np.add(fetch_a(warp) * fetch_b(warp), fetch_c(warp),
                           out=warp.reg_rows[dst],
                           where=guard(warp, top.mask))
                top.pc = next_pc
                if next_pc == top.reconv_pc and len(warp.stack.entries) > 1:
                    warp.stack._pop_reconverged()
                return _ALU_RESULTS[count]
            return plan

        def compute(warp: Warp) -> np.ndarray:
            return fetch_a(warp) * fetch_b(warp) + fetch_c(warp)
    elif len(inst.srcs) == 2:
        fetch_a = _compile_fetch(inst.srcs[0])
        fetch_b = _compile_fetch(inst.srcs[1])
        fn2 = _BINARY_OPS.get(op)
        if fn2 is None:
            raise ExecutionError(f"unhandled binary op {op!r}")
        if inst.dst.kind != "p" and isinstance(fn2, np.ufunc):
            dst = inst.dst.value

            # Fused masked update: one ufunc call computes straight into
            # the destination row, skipping the temporary + copyto.
            def plan(warp: Warp, top) -> IssueResult:
                count = top.count
                if guard is None:
                    if count == warp.warp_size:
                        fn2(fetch_a(warp), fetch_b(warp),
                            out=warp.reg_rows[dst])
                    else:
                        fn2(fetch_a(warp), fetch_b(warp),
                            out=warp.reg_rows[dst], where=top.mask)
                else:
                    fn2(fetch_a(warp), fetch_b(warp),
                        out=warp.reg_rows[dst], where=guard(warp, top.mask))
                top.pc = next_pc
                if next_pc == top.reconv_pc and len(warp.stack.entries) > 1:
                    warp.stack._pop_reconverged()
                return _ALU_RESULTS[count]
            return plan

        def compute(warp: Warp) -> np.ndarray:
            return fn2(fetch_a(warp), fetch_b(warp))
    else:
        fetch_a = _compile_fetch(inst.srcs[0])
        fn1 = _UNARY_OPS.get(op)
        if fn1 is None:
            raise ExecutionError(f"unhandled unary op {op!r}")
        if inst.dst.kind != "p":
            dst = inst.dst.value
            if fn1 is _op_mov:
                def plan(warp: Warp, top) -> IssueResult:
                    count = top.count
                    if guard is None:
                        if count == warp.warp_size:
                            np.copyto(warp.reg_rows[dst], fetch_a(warp))
                        else:
                            np.copyto(warp.reg_rows[dst], fetch_a(warp),
                                      where=top.mask)
                    else:
                        np.copyto(warp.reg_rows[dst], fetch_a(warp),
                                  where=guard(warp, top.mask))
                    top.pc = next_pc
                    if (next_pc == top.reconv_pc
                            and len(warp.stack.entries) > 1):
                        warp.stack._pop_reconverged()
                    return _ALU_RESULTS[count]
                return plan
            if isinstance(fn1, np.ufunc):
                def plan(warp: Warp, top) -> IssueResult:
                    count = top.count
                    if guard is None:
                        if count == warp.warp_size:
                            fn1(fetch_a(warp), out=warp.reg_rows[dst])
                        else:
                            fn1(fetch_a(warp), out=warp.reg_rows[dst],
                                where=top.mask)
                    else:
                        fn1(fetch_a(warp), out=warp.reg_rows[dst],
                            where=guard(warp, top.mask))
                    top.pc = next_pc
                    if (next_pc == top.reconv_pc
                            and len(warp.stack.entries) > 1):
                        warp.stack._pop_reconverged()
                    return _ALU_RESULTS[count]
                return plan

        def compute(warp: Warp) -> np.ndarray:
            return fn1(fetch_a(warp))

    if inst.dst.kind == "p":
        dst = inst.dst.value

        def plan(warp: Warp, top) -> IssueResult:
            mask = top.mask if guard is None else guard(warp, top.mask)
            np.copyto(warp.pred_rows[dst], compute(warp) != 0.0, where=mask)
            warp.stack.advance(next_pc)
            return _ALU_RESULTS[top.count]
    else:
        dst = inst.dst.value

        def plan(warp: Warp, top) -> IssueResult:
            mask = top.mask if guard is None else guard(warp, top.mask)
            np.copyto(warp.reg_rows[dst], compute(warp), where=mask)
            warp.stack.advance(next_pc)
            return _ALU_RESULTS[top.count]
    return plan


def _compile_branch(inst: Instruction, machine: MachineState):
    pc = inst.pc
    next_pc = pc + 1
    target = inst.target

    if inst.pred is None:
        def plan(warp: Warp, top) -> IssueResult:
            top.pc = target
            if target == top.reconv_pc and len(warp.stack.entries) > 1:
                warp.stack._pop_reconverged()
            return _CONTROL_RESULTS[top.count]
        return plan

    guard = _compile_guard(inst)
    reconv = machine.reconv_table.get(pc)

    def plan(warp: Warp, top) -> IssueResult:
        active = top.mask
        count = top.count
        taken = guard(warp, active)
        # One reduction decides uniformity: taken is a subset of active,
        # so "no lane falls through" is exactly taken_count == count.
        taken_count = int(taken.sum())
        if taken_count == 0:
            top.pc = next_pc
            if next_pc == top.reconv_pc and len(warp.stack.entries) > 1:
                warp.stack._pop_reconverged()
        elif taken_count == count:
            top.pc = target
            if target == top.reconv_pc and len(warp.stack.entries) > 1:
                warp.stack._pop_reconverged()
        else:
            if reconv is None:
                raise ExecutionError("divergent branch missing reconvergence "
                                     "point", pc=pc)
            warp.stack.diverge(taken, active & ~taken, target, next_pc,
                               reconv)
        return _CONTROL_RESULTS[count]
    return plan


def _compile_exit(inst: Instruction, machine: MachineState):
    pc = inst.pc
    next_pc = pc + 1
    guard = _compile_guard(inst)

    def plan(warp: Warp, top) -> IssueResult:
        active_count = top.count
        if guard is None:
            mask = top.mask
            exiting = active_count
        else:
            mask = guard(warp, top.mask)
            exiting = int(mask.sum())
        if exiting == 0:
            warp.stack.advance(next_pc)
            return _CONTROL_RESULTS[active_count]
        executing_entry = top
        snapshot = machine.snapshot
        if snapshot is not None:
            snapshot.on_exit(warp, mask)
        ends_chain = mask & ~warp.spawned_flag & (warp.data_slot_addr >= 0)
        freed = warp.data_slot_addr[ends_chain]
        warp.data_slot_addr[mask] = -1
        warp.stack.retire_lanes(mask)
        finished = warp.finish_if_empty()
        if snapshot is not None and finished:
            snapshot.on_warp_finished(warp)
        entries = warp.stack.entries
        if not finished and entries and entries[-1] is executing_entry:
            warp.stack.advance(next_pc)
        return IssueResult(kind=CONTROL, active=active_count,
                           exited_lanes=exiting, warp_finished=finished,
                           freed_data_addresses=freed)
    return plan


def _compile_bar(inst: Instruction):
    pc = inst.pc
    next_pc = pc + 1

    def plan(warp: Warp, top) -> IssueResult:
        if warp.stack.depth != 1:
            raise ExecutionError(
                "bar reached with divergent control flow; all threads of "
                "the block must reach the barrier together", pc=pc)
        warp.stack.advance(next_pc)
        return IssueResult(kind=BARRIER, active=top.count)
    return plan


def _compile_spawn(inst: Instruction, machine: MachineState):
    next_pc = inst.pc + 1
    guard = _compile_guard(inst)
    pointer_reg = inst.srcs[0].value
    kernel_name = inst.label
    info = machine.program.kernels[kernel_name]
    target_pc = info.entry_pc

    def plan(warp: Warp, top) -> IssueResult:
        mask = top.mask if guard is None else guard(warp, top.mask)
        pointers = _int64(warp.reg_rows[pointer_reg][mask])
        warp.spawned_flag |= mask
        warp.stack.advance(next_pc)
        return IssueResult(
            kind=SPAWN, active=top.count,
            spawn=SpawnRequest(kernel_name=kernel_name,
                               target_pc=target_pc, pointers=pointers))
    return plan


def _compile_memory(inst: Instruction, machine: MachineState):
    next_pc = inst.pc + 1
    guard = _compile_guard(inst)
    base_reg = inst.srcs[0].value
    offset = inst.offset
    width = inst.width
    word_offsets = np.arange(width)[None, :]
    space = inst.space
    is_store = inst.op == "st"

    if space == "const" and is_store:
        raise ExecutionError("constant memory is read-only", pc=inst.pc)

    if is_store:
        src = inst.srcs[1]
        store_imm = src.value if src.kind == "imm" else None
        store_reg = src.value if src.kind != "imm" else None
    load_reg = inst.dst.value if not is_store else None

    # ``lanes is None`` means every lane of the warp is active (the common
    # fully-converged case): the helpers then skip np.nonzero and the fancy
    # gather/scatter indexing in favour of whole-row operations.

    def active_lanes(warp: Warp, top):
        if guard is None:
            if top.count == warp.warp_size:
                return None, top.count
            lanes = np.nonzero(top.mask)[0]
        else:
            lanes = np.nonzero(guard(warp, top.mask))[0]
        return lanes, lanes.size

    def gather_addresses(warp: Warp, lanes) -> np.ndarray:
        row = warp.reg_rows[base_reg]
        base = _int64(row if lanes is None else row[lanes]) + offset
        if width == 1:
            return base
        # Column-major stacking keeps per-lane words adjacent for
        # coalescing.
        return (base[:, None] + word_offsets).reshape(-1)

    def store_values(warp: Warp, lanes, n: int) -> np.ndarray:
        if store_imm is not None:
            return np.full(n * width, store_imm)
        if width == 1:
            row = warp.reg_rows[store_reg]
            return row if lanes is None else row[lanes]
        # One 2D block read instead of per-word row gathers; the
        # transpose keeps the same per-lane word adjacency as stacking
        # the rows column-wise.
        block = warp.regs[store_reg:store_reg + width]
        if lanes is not None:
            block = block[:, lanes]
        return block.T.reshape(-1)

    def load_values(warp: Warp, lanes, n: int, values: np.ndarray) -> None:
        if width == 1:
            if lanes is None:
                np.copyto(warp.reg_rows[load_reg], values)
            else:
                warp.reg_rows[load_reg][lanes] = values
            return
        grid = values.reshape(n, width)
        if lanes is None:
            np.copyto(warp.regs[load_reg:load_reg + width], grid.T)
        else:
            warp.regs[load_reg:load_reg + width, lanes] = grid.T

    if space in ("global", "local"):
        def plan(warp: Warp, top) -> IssueResult:
            lanes, n = active_lanes(warp, top)
            if n == 0:
                warp.stack.advance(next_pc)
                return _ALU_RESULTS[top.count]
            all_addresses = gather_addresses(warp, lanes)
            memory = machine.global_mem
            completions = 0
            if is_store:
                completions = memory.write(all_addresses,
                                           store_values(warp, lanes, n))
            else:
                load_values(warp, lanes, n, memory.read(all_addresses))
            warp.stack.advance(next_pc)
            return IssueResult(kind=OFFCHIP, active=top.count,
                               addresses=all_addresses, is_store=is_store,
                               space=space, completions=completions)
        return plan

    if space == "const":
        def plan(warp: Warp, top) -> IssueResult:
            lanes, n = active_lanes(warp, top)
            if n == 0:
                warp.stack.advance(next_pc)
                return _ALU_RESULTS[top.count]
            all_addresses = gather_addresses(warp, lanes)
            load_values(warp, lanes, n, machine.const_mem[all_addresses])
            warp.stack.advance(next_pc)
            # The constant cache (present on the modelled GT200 even though
            # Table I disables L1/L2 data caches) makes uniform constant
            # reads an on-chip broadcast: low latency, no DRAM traffic.
            return IssueResult(kind=ONCHIP, active=top.count,
                               addresses=all_addresses, is_store=False,
                               space=space, conflict_penalty=0,
                               onchip_words=int(all_addresses.size))
        return plan

    onchip = machine.shared_mem if space == "shared" else machine.spawn_mem

    def plan(warp: Warp, top) -> IssueResult:
        lanes, n = active_lanes(warp, top)
        if n == 0:
            warp.stack.advance(next_pc)
            return _ALU_RESULTS[top.count]
        all_addresses = gather_addresses(warp, lanes)
        if is_store:
            penalty = onchip.write(all_addresses,
                                   store_values(warp, lanes, n))
        else:
            values, penalty = onchip.read(all_addresses)
            load_values(warp, lanes, n, values)
        warp.stack.advance(next_pc)
        return IssueResult(kind=ONCHIP, active=top.count,
                           addresses=all_addresses, is_store=is_store,
                           space=space, conflict_penalty=penalty,
                           onchip_words=int(all_addresses.size))
    return plan


#: Extra serialization cycles per conflicting atomic lane (the paper's
#: related-work note: "atomic instructions result in higher instruction
#: latencies to serialize the instructions operating on the same data").
ATOMIC_SERIALIZATION_CYCLES = 2


def _compile_atomic(inst: Instruction, machine: MachineState):
    """Serialized read-modify-write on global memory, in lane order."""
    next_pc = inst.pc + 1
    guard = _compile_guard(inst)
    address_reg = inst.srcs[0].value
    offset = inst.offset
    operand = inst.srcs[1]
    dst = inst.dst.value
    cmp = inst.cmp

    def plan(warp: Warp, top) -> IssueResult:
        mask = top.mask if guard is None else guard(warp, top.mask)
        lanes = np.nonzero(mask)[0]
        if lanes.size == 0:
            warp.stack.advance(next_pc)
            return _ALU_RESULTS[top.count]
        addresses = _int64(warp.reg_rows[address_reg][lanes]) + offset
        values = (np.full(lanes.size, operand.value)
                  if operand.kind == "imm"
                  else warp.reg_rows[operand.value][lanes])
        memory = machine.global_mem
        memory._check(addresses)
        old = np.empty(lanes.size)
        for index in range(lanes.size):
            address = int(addresses[index])
            current = memory.words[address]
            old[index] = current
            if cmp == "add":
                memory.words[address] = current + values[index]
            elif cmp == "max":
                memory.words[address] = max(current, values[index])
            elif cmp == "min":
                memory.words[address] = min(current, values[index])
            else:  # exch
                memory.words[address] = values[index]
        warp.reg_rows[dst][lanes] = old
        penalty = ATOMIC_SERIALIZATION_CYCLES * (int(lanes.size) - 1)
        warp.stack.advance(next_pc)
        return IssueResult(kind=OFFCHIP, active=top.count,
                           addresses=addresses, is_store=True, space="global",
                           conflict_penalty=penalty)
    return plan
