"""Functional execution of one warp instruction (lane-vectorized).

The executor applies an instruction to every active lane of a warp using
masked numpy operations, updates the SIMT stack for control flow, and
returns an :class:`IssueResult` describing the timing-relevant side effects
(memory addresses to coalesce, bank-conflict penalties, spawn requests,
lane exits) that the SM turns into latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ExecutionError
from repro.isa.instructions import Instruction
from repro.simt.warp import Warp

#: IssueResult.kind values.
ALU = "alu"
OFFCHIP = "offchip"
ONCHIP = "onchip"
SPAWN = "spawn"
CONTROL = "control"
BARRIER = "barrier"


@dataclass
class SpawnRequest:
    """Active lanes asking to create children for one µ-kernel."""

    kernel_name: str
    target_pc: int
    pointers: np.ndarray  # spawn-memory pointers, one per spawning lane


@dataclass
class IssueResult:
    """Timing-relevant outcome of issuing one warp instruction."""

    kind: str
    active: int
    addresses: np.ndarray | None = None
    is_store: bool = False
    space: str | None = None
    conflict_penalty: int = 0
    spawn: SpawnRequest | None = None
    completions: int = 0
    exited_lanes: int = 0
    warp_finished: bool = False
    onchip_words: int = 0
    freed_data_addresses: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64))
    """Spawn-memory thread-data slots released by exiting thread chains
    (threads that exit without having spawned a child; paper §IV-A1)."""


class MachineState:
    """Functional state an executor needs: memories + program metadata."""

    def __init__(self, program, global_mem, const_mem, shared_mem, spawn_mem,
                 reconv_table):
        self.program = program
        self.global_mem = global_mem
        self.const_mem = const_mem
        self.shared_mem = shared_mem
        self.spawn_mem = spawn_mem
        self.reconv_table = reconv_table


def _int64(values: np.ndarray) -> np.ndarray:
    return values.astype(np.int64)


def _binary_op(op: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        with np.errstate(divide="ignore", invalid="ignore"):
            return a / b
    if op == "min":
        return np.minimum(a, b)
    if op == "max":
        return np.maximum(a, b)
    if op == "rem":
        ib = _int64(b)
        safe = np.where(ib == 0, 1, ib)
        return np.where(ib == 0, 0, _int64(a) % safe).astype(np.float64)
    if op == "and":
        return (_int64(a) & _int64(b)).astype(np.float64)
    if op == "or":
        return (_int64(a) | _int64(b)).astype(np.float64)
    if op == "xor":
        return (_int64(a) ^ _int64(b)).astype(np.float64)
    if op == "shl":
        return (_int64(a) << _int64(b)).astype(np.float64)
    if op == "shr":
        return (_int64(a) >> _int64(b)).astype(np.float64)
    raise ExecutionError(f"unhandled binary op {op!r}")


def _unary_op(op: str, a: np.ndarray) -> np.ndarray:
    if op == "mov":
        return a
    if op == "neg":
        return -a
    if op == "abs":
        return np.abs(a)
    if op == "not":
        return (~_int64(a)).astype(np.float64)
    if op == "rcp":
        with np.errstate(divide="ignore"):
            return 1.0 / a
    if op == "sqrt":
        with np.errstate(invalid="ignore"):
            return np.sqrt(a)
    if op == "rsqrt":
        with np.errstate(divide="ignore", invalid="ignore"):
            return 1.0 / np.sqrt(a)
    if op == "floor":
        return np.floor(a)
    if op == "cvt":
        return np.trunc(a)
    raise ExecutionError(f"unhandled unary op {op!r}")


_COMPARES = {
    "lt": np.less, "le": np.less_equal, "gt": np.greater,
    "ge": np.greater_equal, "eq": np.equal, "ne": np.not_equal,
}


def _fetch(warp: Warp, operand) -> np.ndarray:
    kind = operand.kind
    if kind == "r":
        return warp.regs[operand.value]
    if kind == "imm":
        return np.full(warp.warp_size, operand.value)
    if kind == "p":
        return warp.preds[operand.value].astype(np.float64)
    if kind == "sreg":
        name = operand.value
        if name == "tid":
            return warp.tids.astype(np.float64)
        if name == "spawnMemAddr":
            return warp.spawn_addr.astype(np.float64)
        if name == "warpid":
            return np.full(warp.warp_size, float(warp.warp_id))
        if name == "ntid":
            return np.full(warp.warp_size, float(warp.warp_size))
        if name == "smid":
            return np.zeros(warp.warp_size)
    raise ExecutionError(f"cannot fetch operand {operand!r}")


def _guard_mask(warp: Warp, inst: Instruction, active: np.ndarray) -> np.ndarray:
    if inst.pred is None:
        return active
    guard = warp.preds[inst.pred.value]
    if inst.pred_neg:
        guard = ~guard
    return active & guard


def execute(warp: Warp, machine: MachineState) -> IssueResult:
    """Execute the instruction at the warp's PC; returns its IssueResult."""
    pc = warp.pc
    if not 0 <= pc < len(machine.program):
        raise ExecutionError("PC outside program", pc=pc)
    inst = machine.program[pc]
    active = warp.active_mask()
    active_count = int(active.sum())
    if active_count == 0:
        raise ExecutionError("issued a warp with no active lanes", pc=pc)
    mask = _guard_mask(warp, inst, active)
    warp.issued_instructions += 1
    warp.lane_commits += active
    op = inst.op

    if op == "bra":
        return _execute_branch(warp, machine, inst, active, mask, active_count)
    if op == "exit":
        return _execute_exit(warp, inst, active, mask, active_count)
    if op in ("ld", "st"):
        result = _execute_memory(warp, machine, inst, mask, active_count)
        warp.stack.advance(pc + 1)
        return result
    if op == "atom":
        result = _execute_atomic(warp, machine, inst, mask, active_count)
        warp.stack.advance(pc + 1)
        return result
    if op == "bar":
        if warp.stack.depth != 1:
            raise ExecutionError(
                "bar reached with divergent control flow; all threads of "
                "the block must reach the barrier together", pc=pc)
        warp.stack.advance(pc + 1)
        return IssueResult(kind=BARRIER, active=active_count)
    if op == "spawn":
        pointers = _int64(warp.regs[inst.srcs[0].value][mask])
        info = machine.program.kernels[inst.label]
        warp.spawned_flag |= mask
        warp.stack.advance(pc + 1)
        return IssueResult(
            kind=SPAWN, active=active_count,
            spawn=SpawnRequest(kernel_name=inst.label,
                               target_pc=info.entry_pc, pointers=pointers))
    _execute_alu(warp, inst, mask)
    warp.stack.advance(pc + 1)
    return IssueResult(kind=ALU, active=active_count)


def _execute_alu(warp: Warp, inst: Instruction, mask: np.ndarray) -> None:
    op = inst.op
    if op == "nop":
        return
    if op == "setp":
        a = _fetch(warp, inst.srcs[0])
        b = _fetch(warp, inst.srcs[1])
        with np.errstate(invalid="ignore"):
            result = _COMPARES[inst.cmp](a, b)
        dest = warp.preds[inst.dst.value]
        dest[mask] = result[mask]
        return
    if op == "selp":
        a = _fetch(warp, inst.srcs[0])
        b = _fetch(warp, inst.srcs[1])
        chooser = warp.preds[inst.srcs[2].value]
        result = np.where(chooser, a, b)
    elif op == "mad":
        a = _fetch(warp, inst.srcs[0])
        b = _fetch(warp, inst.srcs[1])
        c = _fetch(warp, inst.srcs[2])
        result = a * b + c
    elif len(inst.srcs) == 2:
        result = _binary_op(op, _fetch(warp, inst.srcs[0]),
                            _fetch(warp, inst.srcs[1]))
    else:
        result = _unary_op(op, _fetch(warp, inst.srcs[0]))
    if inst.dst.kind == "p":
        warp.preds[inst.dst.value][mask] = result[mask] != 0.0
    else:
        warp.regs[inst.dst.value][mask] = result[mask]


def _execute_memory(warp: Warp, machine: MachineState, inst: Instruction,
                    mask: np.ndarray, active_count: int) -> IssueResult:
    lanes = np.nonzero(mask)[0]
    if lanes.size == 0:
        return IssueResult(kind=ALU, active=active_count)
    base = _int64(warp.regs[inst.srcs[0].value][lanes]) + inst.offset
    width = inst.width
    # Column-major stacking keeps per-lane words adjacent for coalescing.
    all_addresses = (base[:, None] + np.arange(width)[None, :]).reshape(-1)
    space = inst.space
    is_store = inst.op == "st"
    if space in ("global", "local"):
        memory = machine.global_mem
        completions = 0
        if is_store:
            values = _store_values(warp, inst, lanes, width)
            completions = memory.write(all_addresses, values)
        else:
            _load_values(warp, inst, lanes, width, memory.read(all_addresses))
        return IssueResult(kind=OFFCHIP, active=active_count,
                           addresses=all_addresses, is_store=is_store,
                           space=space, completions=completions)
    if space == "const":
        if is_store:
            raise ExecutionError("constant memory is read-only", pc=inst.pc)
        values = machine.const_mem[all_addresses]
        _load_values(warp, inst, lanes, width, values)
        # The constant cache (present on the modelled GT200 even though
        # Table I disables L1/L2 data caches) makes uniform constant reads
        # an on-chip broadcast: low latency, no DRAM traffic.
        return IssueResult(kind=ONCHIP, active=active_count,
                           addresses=all_addresses, is_store=False,
                           space=space, conflict_penalty=0,
                           onchip_words=int(all_addresses.size))
    memory = machine.shared_mem if space == "shared" else machine.spawn_mem
    if is_store:
        values = _store_values(warp, inst, lanes, width)
        penalty = memory.write(all_addresses, values)
    else:
        values, penalty = memory.read(all_addresses)
        _load_values(warp, inst, lanes, width, values)
    return IssueResult(kind=ONCHIP, active=active_count,
                       addresses=all_addresses, is_store=is_store,
                       space=space, conflict_penalty=penalty,
                       onchip_words=int(all_addresses.size))


#: Extra serialization cycles per conflicting atomic lane (the paper's
#: related-work note: "atomic instructions result in higher instruction
#: latencies to serialize the instructions operating on the same data").
ATOMIC_SERIALIZATION_CYCLES = 2


def _execute_atomic(warp: Warp, machine: MachineState, inst: Instruction,
                    mask: np.ndarray, active_count: int) -> IssueResult:
    """Serialized read-modify-write on global memory, in lane order."""
    lanes = np.nonzero(mask)[0]
    if lanes.size == 0:
        return IssueResult(kind=ALU, active=active_count)
    addresses = _int64(warp.regs[inst.srcs[0].value][lanes]) + inst.offset
    operand = inst.srcs[1]
    values = (np.full(lanes.size, operand.value) if operand.kind == "imm"
              else warp.regs[operand.value][lanes])
    memory = machine.global_mem
    memory._check(addresses)
    old = np.empty(lanes.size)
    for index in range(lanes.size):
        address = int(addresses[index])
        current = memory.words[address]
        old[index] = current
        if inst.cmp == "add":
            memory.words[address] = current + values[index]
        elif inst.cmp == "max":
            memory.words[address] = max(current, values[index])
        elif inst.cmp == "min":
            memory.words[address] = min(current, values[index])
        else:  # exch
            memory.words[address] = values[index]
    warp.regs[inst.dst.value][lanes] = old
    penalty = ATOMIC_SERIALIZATION_CYCLES * (int(lanes.size) - 1)
    return IssueResult(kind=OFFCHIP, active=active_count,
                       addresses=addresses, is_store=True, space="global",
                       conflict_penalty=penalty)


def _store_values(warp: Warp, inst: Instruction, lanes: np.ndarray,
                  width: int) -> np.ndarray:
    src = inst.srcs[1]
    if src.kind == "imm":
        return np.full(lanes.size * width, src.value)
    first = src.value
    columns = [warp.regs[first + j][lanes] for j in range(width)]
    return np.stack(columns, axis=1).reshape(-1)


def _load_values(warp: Warp, inst: Instruction, lanes: np.ndarray,
                 width: int, values: np.ndarray) -> None:
    grid = values.reshape(lanes.size, width)
    first = inst.dst.value
    for j in range(width):
        warp.regs[first + j][lanes] = grid[:, j]


def _execute_branch(warp: Warp, machine: MachineState, inst: Instruction,
                    active: np.ndarray, mask: np.ndarray, active_count: int
                    ) -> IssueResult:
    pc = inst.pc
    target = inst.target
    if inst.pred is None:
        warp.stack.advance(target)
        return IssueResult(kind=CONTROL, active=active_count)
    taken = mask
    not_taken = active & ~taken
    if not taken.any():
        warp.stack.advance(pc + 1)
    elif not not_taken.any():
        warp.stack.advance(target)
    else:
        reconv = machine.reconv_table.get(pc)
        if reconv is None:
            raise ExecutionError("divergent branch missing reconvergence "
                                 "point", pc=pc)
        warp.stack.diverge(taken, not_taken, target, pc + 1, reconv)
    return IssueResult(kind=CONTROL, active=active_count)


def _execute_exit(warp: Warp, inst: Instruction, active: np.ndarray,
                  mask: np.ndarray, active_count: int) -> IssueResult:
    pc = inst.pc
    exiting = int(mask.sum())
    if exiting == 0:
        warp.stack.advance(pc + 1)
        return IssueResult(kind=CONTROL, active=active_count)
    executing_entry = warp.stack.top
    ends_chain = mask & ~warp.spawned_flag & (warp.data_slot_addr >= 0)
    freed = warp.data_slot_addr[ends_chain].copy()
    warp.data_slot_addr[mask] = -1
    warp.stack.retire_lanes(mask)
    finished = warp.finish_if_empty()
    if not finished and warp.stack.entries and warp.stack.entries[-1] is executing_entry:
        warp.stack.advance(pc + 1)
    return IssueResult(kind=CONTROL, active=active_count,
                       exited_lanes=exiting, warp_finished=finished,
                       freed_data_addresses=freed)
