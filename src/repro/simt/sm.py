"""Streaming multiprocessor: warp slots, issue logic, scheduling policies.

Each SM issues at most one warp instruction per cycle, round-robin among
warps whose previous instruction has completed (the paper's two thread
queues: the scheduling queue is modelled by per-warp ``ready_at`` times and
the pending queue by memory completion times from the DRAM model).

Scheduling models (paper §VI):

- **block** — FX5800 behaviour: a thread block is admitted only when warp
  slots exist for the whole block and the per-SM block limit is not
  exceeded.
- **warp** — thread scheduling: individual warps are admitted while
  resources last; required by dynamic µ-kernels.

With spawn enabled, dynamically formed warps have admission priority over
unscheduled launch-time threads (§IV-D), launch threads additionally wait
for free spawn-memory data slots, and partial warps are flushed
lowest-PC-first when nothing else remains to schedule.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from dataclasses import dataclass, field

import numpy as np

from repro.config import GPUConfig, SchedulingModel
from repro.errors import ExecutionError, SchedulingError
from repro.obs.constants import (
    IDLE_BARRIER,
    IDLE_DRAINED,
    IDLE_DRAM_PENDING,
    IDLE_ISSUE_PORT,
    STALL_BANK_CONFLICT,
    STALL_SPAWN_CONFLICT,
    WAIT_DRAM,
    WAIT_PIPE,
)
from repro.simt.executor import (
    ALU,
    BARRIER,
    CONTROL,
    OFFCHIP,
    ONCHIP,
    SPAWN,
    MachineState,
)
from repro.simt.spawn import SpawnUnit
from repro.simt.stats import NUM_W_BUCKETS, DivergenceSampler, SMStats
from repro.simt.warp import BLOCKED, FINISHED, READY, Warp


WAKE_WHEEL = 512
"""Timing-wheel span (cycles, power of two) of the calendar scheduler's
near-wake ring. Wakes landing within this horizon of the wheel cursor are
filed by list append into ``_wheel[when % WAKE_WHEEL]``; later wakes
(DRAM queueing pile-ups) overflow into the ``_wake_buckets`` dict +
``_wake_heap`` far calendar. Must exceed every pipeline latency so the
overwhelmingly common near case never touches the heap."""


def pick_slot(mask: int, rr: int) -> int:
    """Index the round-robin two-range scan would pick from ``mask``.

    ``mask`` has bit *i* set when ``warps[i]`` is issue-eligible; the scan
    starting at ``rr`` picks the first eligible index in ``[rr, count)``
    and wraps to ``[0, rr)``. That is the lowest set bit at index >= rr,
    else the lowest set bit overall — two O(1) integer operations. Must be
    called with a non-zero mask. The calendar scheduler's pick; the
    scheduler property tests lock its equivalence to the scan loop."""
    high = mask >> rr
    if high:
        return rr + ((high & -high).bit_length() - 1)
    low = mask & ((1 << rr) - 1)
    return (low & -low).bit_length() - 1


@dataclass
class LaunchBlock:
    """One thread block: warps of (tids, active mask, thread count)
    launched together. The count is precomputed so per-cycle admission
    attempts (which may fail on exhausted spawn data slots for thousands
    of consecutive cycles) never re-reduce the mask."""

    block_id: int
    warps: list[tuple[np.ndarray, np.ndarray, int]] = field(
        default_factory=list)

    @property
    def num_warps(self) -> int:
        return len(self.warps)

    @property
    def num_threads(self) -> int:
        return sum(count for _, _, count in self.warps)


class SM:
    """One streaming multiprocessor."""

    def __init__(self, sm_id: int, config: GPUConfig, machine: MachineState,
                 dram, *, entry_pc: int, num_regs: int, max_warps: int,
                 warps_per_block: int, max_blocks: int,
                 spawn_unit: SpawnUnit | None,
                 divergence_window: int = 1000, probe=None):
        if max_warps <= 0:
            raise SchedulingError("SM has zero warp slots; kernel resources "
                                  "exceed the machine configuration")
        self.sm_id = sm_id
        self.config = config
        self.machine = machine
        self.dram = dram
        self.entry_pc = entry_pc
        self.num_regs = num_regs
        self.max_warps = max_warps
        self.warps_per_block = warps_per_block
        self.max_blocks = max_blocks
        self.spawn_unit = spawn_unit
        self.warps: list[Warp] = []
        self.launch_queue: deque[LaunchBlock] = deque()
        self.stats = SMStats()
        self.divergence = DivergenceSampler(warp_size=config.warp_size,
                                            window=divergence_window)
        self.stall_until = 0
        self.probe = probe
        """Attached :class:`repro.obs.probe.SMProbe` or None. Every hook
        call below is guarded by ``if probe is not None`` so the untraced
        hot path is unchanged (the zero-overhead-when-off contract)."""
        self._stall_cause = STALL_BANK_CONFLICT
        """Why ``stall_until`` is set (probe attribution only; updated on
        each stall-extending penalty while a probe is attached)."""
        if probe is not None and spawn_unit is not None:
            spawn_unit.probe = probe
        self._rr = 0
        self._calendar = config.scheduler == "calendar"
        self._ready_mask = 0
        """Calendar scheduler: bit ``warp.sched_slot`` set iff the warp is
        READY with ``ready_at`` at or before the last drained cycle —
        exactly the set the scan scheduler's per-cycle loop would accept.
        Maintained by ``_drain_wakes`` (set), the issue pick (clear) and
        ``_retire_warp`` (shift); always 0 under the scan scheduler."""
        self._wheel: list[list[Warp]] = [[] for _ in range(WAKE_WHEEL)]
        """Calendar scheduler: near-wake timing wheel. Slot ``c %
        WAKE_WHEEL`` lists warps whose ``ready_at`` is ``c``, for wakes
        within ``WAKE_WHEEL`` cycles of ``_wheel_pos`` (every transition
        that makes a warp eligible in the future — admission, post-issue
        latency, barrier release — files it somewhere; ``_drain_wakes``
        moves due entries into the ready mask). Invariant: every filed
        wake satisfies ``_wheel_pos <= when < _wheel_pos + WAKE_WHEEL``,
        so slots never mix laps."""
        self._wheel_pos = 0
        """First wheel cycle not yet drained; advances monotonically."""
        self._wake_buckets: dict[int, list[Warp]] = {}
        """Calendar scheduler far overflow: ``cycle -> warps`` for wakes
        at or beyond ``_wheel_pos + WAKE_WHEEL`` when filed."""
        self._wake_heap: list[int] = []
        """Min-heap over the keys of ``_wake_buckets``."""
        if self._calendar:
            self._select_warp = self._select_warp_calendar
        self._admission_dirty = True
        """False while try_schedule is known to be unable to admit
        anything: every admission blocker (free warp slots, free spawn
        data slots / formation regions, formed warps, partial-pool
        threads, queued blocks) only changes through an issue, a warp
        retirement, or a new block — each of which re-arms the flag. The
        per-cycle scheduler then skips the admission scan entirely."""
        self._next_warp_id = 0
        self._next_dynamic_tid = -1
        self._block_live: dict[int, int] = {}
        self._block_of_warp: dict[int, int] = {}
        self._barriers: dict[int, list[Warp]] = {}
        self.last_progress_cycle = 0
        self.thread_commits: dict[int, int] = {}

    # -- admission -----------------------------------------------------------

    @property
    def free_slots(self) -> int:
        return self.max_warps - len(self.warps)

    @property
    def resident_blocks(self) -> int:
        return len(self._block_live)

    def enqueue_block(self, block: LaunchBlock) -> None:
        self.launch_queue.append(block)
        self._admission_dirty = True

    def _admit_warp(self, entry_pc: int, tids: np.ndarray, active: np.ndarray,
                    cycle: int, *, is_dynamic: bool, kernel_name: str = "",
                    spawn_addr: np.ndarray | None = None,
                    data_slots: np.ndarray | None = None,
                    block_id: int | None = None,
                    count: int = -1) -> Warp:
        warp = Warp.launch(self._next_warp_id, self.config.warp_size,
                           self.num_regs, entry_pc, tids, active,
                           is_dynamic=is_dynamic, kernel_name=kernel_name)
        self._next_warp_id += 1
        lanes = np.nonzero(active)[0]
        if spawn_addr is not None:
            warp.spawn_addr[lanes] = spawn_addr
        if data_slots is not None:
            warp.data_slot_addr[lanes] = data_slots
        warp.ready_at = cycle + 1
        if self._calendar:
            warp.sched_slot = len(self.warps)
            self._schedule_wake(warp, warp.ready_at)
        self.warps.append(warp)
        if block_id is not None:
            self._block_of_warp[warp.warp_id] = block_id
            self._block_live[block_id] = self._block_live.get(block_id, 0) + 1
        self.stats.warps_launched += 1
        self.stats.threads_launched += (count if count >= 0
                                        else int(active.sum()))
        if self.probe is not None:
            self.probe.on_warp_launch(cycle, warp)
        return warp

    def _admit_dynamic(self, cycle: int) -> None:
        formed = self.spawn_unit.pop_full_warp()
        size = self.config.warp_size
        count = formed.num_threads
        active = np.zeros(size, dtype=bool)
        active[:count] = True
        tids = np.full(size, -1, dtype=np.int64)
        tids[:count] = np.arange(self._next_dynamic_tid,
                                 self._next_dynamic_tid - count, -1)
        self._next_dynamic_tid -= count
        warp = self._admit_warp(formed.entry_pc, tids, active, cycle,
                                is_dynamic=True,
                                kernel_name=formed.kernel_name,
                                spawn_addr=formed.formation_addresses,
                                data_slots=formed.data_pointers,
                                count=count)
        warp.formation_region = formed.region

    def _admit_launch_warp(self, tids: np.ndarray, active: np.ndarray,
                           count: int, cycle: int,
                           block_id: int | None) -> bool:
        """Admit one launch warp; False if spawn data slots are exhausted."""
        spawn_addr = None
        data_slots = None
        if self.spawn_unit is not None:
            addresses = self.spawn_unit.allocate_data_slots(count)
            if addresses is None:
                return False
            spawn_addr = addresses
            data_slots = addresses
        self._admit_warp(self.entry_pc, tids, active, cycle,
                         is_dynamic=False, spawn_addr=spawn_addr,
                         data_slots=data_slots, block_id=block_id,
                         count=count)
        return True

    def _block_fits(self, block: LaunchBlock) -> bool:
        if self.free_slots < block.num_warps:
            return False
        if self.config.scheduling == SchedulingModel.BLOCK:
            if self.resident_blocks >= self.max_blocks:
                return False
        if self.spawn_unit is not None:
            if self.spawn_unit.free_slot_count < block.num_threads:
                return False
        return True

    def try_schedule(self, cycle: int) -> None:
        """Fill free warp slots: dynamic warps first, then launch threads,
        then (only when nothing else exists) flushed partial warps.

        Every ``break`` means admission is blocked until an issue,
        retirement, or enqueue changes the blocker, so the method clears
        ``_admission_dirty`` on the way out; those three events re-arm it.
        """
        while len(self.warps) < self.max_warps:
            if self.spawn_unit is not None and self.spawn_unit.has_full_warps:
                self._admit_dynamic(cycle)
                continue
            if self.launch_queue:
                if self.config.scheduling == SchedulingModel.BLOCK:
                    block = self.launch_queue[0]
                    if not self._block_fits(block):
                        break
                    self.launch_queue.popleft()
                    for tids, active, count in block.warps:
                        self._admit_launch_warp(tids, active, count, cycle,
                                                block.block_id)
                    continue
                block = self.launch_queue[0]
                tids, active, count = block.warps[0]
                if (self.spawn_unit is not None
                        and self.spawn_unit.free_slot_count < count):
                    break  # data slots exhausted; admission must wait
                if not self._admit_launch_warp(tids, active, count, cycle,
                                               None):
                    break
                block.warps.pop(0)
                if not block.warps:
                    self.launch_queue.popleft()
                continue
            if (self.spawn_unit is not None
                    and self.config.spawn.flush_partial_warps
                    and not self.warps
                    and self.spawn_unit.partial_thread_count > 0):
                formed = self.spawn_unit.flush_partial_warp()
                if formed is None:
                    break
                self.spawn_unit.fifo.append(formed)
                self.stats.partial_warps_flushed += 1
                continue
            break
        self._admission_dirty = False

    # -- per-cycle issue -------------------------------------------------------

    @property
    def done(self) -> bool:
        return (not self.warps and not self.launch_queue
                and (self.spawn_unit is None or self.spawn_unit.idle))

    def step(self, cycle: int) -> bool:
        """Advance one cycle; returns True if an instruction issued."""
        if self.done:
            return False
        stats = self.stats
        stats.cycles += 1
        probe = self.probe
        if probe is not None:
            spawn_unit = self.spawn_unit
            probe.on_cycle(
                cycle, len(self.warps),
                0 if spawn_unit is None else spawn_unit.partial_thread_count,
                0 if spawn_unit is None else len(spawn_unit.fifo))
        if self.stall_until > cycle:
            stats.stall_cycles += 1
            self.divergence.record_stall(cycle)
            if probe is not None:
                probe.on_stall(cycle, self._stall_cause)
            return False
        if self._admission_dirty and len(self.warps) < self.max_warps:
            self.try_schedule(cycle)
        warp = self._select_warp(cycle)
        if warp is None:
            stats.idle_cycles += 1
            self.divergence.record_idle(cycle)
            if probe is not None:
                probe.on_idle(cycle, self._idle_cause())
            return False
        self._issue(warp, cycle)
        if self._calendar and warp.sched_slot >= 0 and warp.status == READY:
            # The issue armed a new ready_at; file the warp back on the
            # wake calendar (retired warps lost their slot, BLOCKED warps
            # wake through the barrier-release path instead). Inlined
            # _schedule_wake (keep in sync): the calendar's hottest
            # insert site, and pipeline latencies make the wheel branch
            # the near-universal case.
            when = warp.ready_at
            if when - self._wheel_pos < 512:  # == WAKE_WHEEL
                self._wheel[when & 511].append(warp)
            else:
                self._schedule_wake(warp, when)
        self.last_progress_cycle = cycle
        return True

    # -- event-driven fast-forward --------------------------------------------

    def next_event_time(self, now: int) -> int | None:
        """Earliest cycle >= ``now`` at which this SM could change state.

        Used by the fast-forward run loop after a cycle with no issue,
        and by the calendar run loop to put an SM to sleep (both
        schedulers share this scan: it is O(resident warps), exact, and
        independent of the wake-calendar structures — cheaper than
        searching the wheel whenever residency is low, which is precisely
        when long sleeps happen). While the issue port is stalled the only
        event is the stall expiring (``step`` does not even admit warps
        during a stall); otherwise it is the earliest ``ready_at`` of a
        READY warp.
        Admission (launch queue, spawn FIFO, partial-warp flush) never
        becomes possible between events: every admission blocker — free
        warp slots, free data slots, formed warps — changes only when this
        SM issues, and warps admitted on the last attempted cycle are
        already READY with ``ready_at`` in the future. BLOCKED warps wake
        only via a sibling's issue, so they carry no event of their own.
        Returns None when the SM is quiescent (nothing can ever happen
        without external input — e.g. all warps blocked at a barrier).
        """
        if self.done:
            return None
        if self.stall_until > now:
            return self.stall_until
        if self.stall_until == now:
            # The stall expired exactly at ``now``: no step has reached
            # try_schedule since the stall began, so an admission (launch
            # warp, formed warp, partial flush) may be possible right now.
            return now
        best: int | None = None
        for warp in self.warps:
            if warp.status != READY:
                continue
            if warp.ready_at <= now:
                return now
            if best is None or warp.ready_at < best:
                best = warp.ready_at
        return best

    def credit_skipped(self, start: int, stop: int) -> None:
        """Account the fast-forwarded span [start, stop) exactly as the
        cycle-by-cycle loop would: one cycle each, stalled while
        ``stall_until`` has not expired, idle afterwards."""
        if stop <= start or self.done:
            return
        self.stats.cycles += stop - start
        stall_end = min(stop, max(start, self.stall_until))
        probe = self.probe
        if probe is not None:
            # No SM issues inside a skipped span, so the warp set, wait
            # kinds, pool/FIFO depths, and the stall cause are constant:
            # one span credit equals per-cycle sampling (exact == fast).
            spawn_unit = self.spawn_unit
            probe.on_cycle_span(
                start, stop, len(self.warps),
                0 if spawn_unit is None else spawn_unit.partial_thread_count,
                0 if spawn_unit is None else len(spawn_unit.fifo))
        if stall_end > start:
            self.stats.stall_cycles += stall_end - start
            self.divergence.record_stall_span(start, stall_end)
            if probe is not None:
                probe.on_stall_span(start, stall_end, self._stall_cause)
        if stop > stall_end:
            self.stats.idle_cycles += stop - stall_end
            self.divergence.record_idle_span(stall_end, stop)
            if probe is not None:
                probe.on_idle_span(stall_end, stop, self._idle_cause())

    def _idle_cause(self) -> str:
        """Attribute an idle (no warp ready) cycle to its dominant cause.

        Probe path only. Priority: a warp awaiting DRAM explains the wait
        best (memory-bound), else pipeline latency holds the issue port,
        else every resident warp is blocked at a barrier; with no resident
        warps the SM is drained (admission-starved or finished).
        """
        has_pipe = False
        has_barrier = False
        for warp in self.warps:
            if warp.status == BLOCKED:
                has_barrier = True
            elif warp.wait_kind == WAIT_DRAM:
                return IDLE_DRAM_PENDING
            else:
                has_pipe = True
        if has_pipe:
            return IDLE_ISSUE_PORT
        if has_barrier:
            return IDLE_BARRIER
        return IDLE_DRAINED

    def _select_warp_scan(self, cycle: int) -> Warp | None:
        """Round-robin pick starting at ``self._rr`` (two-range scan).

        The reference scheduler: O(warps) per cycle. The calendar
        scheduler (:meth:`_select_warp_calendar`) reproduces this pick
        order exactly from its eligibility mask."""
        warps = self.warps
        count = len(warps)
        if count == 0:
            return None
        rr = self._rr
        for index in range(rr, count):
            warp = warps[index]
            if warp.status == READY and warp.ready_at <= cycle:
                self._rr = index + 1 if index + 1 < count else 0
                return warp
        for index in range(rr):
            warp = warps[index]
            if warp.status == READY and warp.ready_at <= cycle:
                self._rr = index + 1 if index + 1 < count else 0
                return warp
        return None

    #: Default pick; ``__init__`` rebinds the instance attribute to
    #: :meth:`_select_warp_calendar` under ``scheduler="calendar"``.
    _select_warp = _select_warp_scan

    # -- calendar scheduler ----------------------------------------------------

    def _schedule_wake(self, warp: Warp, when: int) -> None:
        """File ``warp`` on the wake calendar: it becomes issue-eligible
        at cycle ``when`` (its ``ready_at``). Duplicate filings are
        harmless — draining sets an already-set mask bit — and entries for
        warps that retire or block before draining are skipped there.

        Near wakes (within ``WAKE_WHEEL`` of the wheel cursor) go on the
        wheel; the cursor-relative test keeps the lap invariant even when
        this SM has not been stepped (and so not drained) for a while."""
        if when - self._wheel_pos < WAKE_WHEEL:
            self._wheel[when & (WAKE_WHEEL - 1)].append(warp)
            return
        bucket = self._wake_buckets.get(when)
        if bucket is None:
            self._wake_buckets[when] = [warp]
            heappush(self._wake_heap, when)
        else:
            bucket.append(warp)

    def _drain_wakes(self, cycle: int) -> None:
        """Move every wake due by ``cycle`` into the eligibility mask.

        Out-of-line mirror of the drain inlined in
        :meth:`_select_warp_calendar` (keep the two in sync); the
        scheduler property tests drive this one directly to check the
        mask/calendar invariants."""
        pos = self._wheel_pos
        if pos <= cycle:
            end = cycle + 1
            if end - pos > WAKE_WHEEL:
                # Every filed wake is within one lap of ``pos``, so a
                # longer span than the wheel means all of them are due:
                # one pass over the whole wheel visits each slot once.
                pos = end - WAKE_WHEEL
            wheel = self._wheel
            mask = self._ready_mask
            while pos < end:
                bucket = wheel[pos & (WAKE_WHEEL - 1)]
                if bucket:
                    for warp in bucket:
                        if (warp.sched_slot >= 0 and warp.status == READY
                                and warp.ready_at <= cycle):
                            mask |= 1 << warp.sched_slot
                    del bucket[:]
                pos += 1
            self._wheel_pos = end
            heap = self._wake_heap
            if heap and heap[0] <= cycle:
                buckets = self._wake_buckets
                while heap and heap[0] <= cycle:
                    for warp in buckets.pop(heappop(heap)):
                        if (warp.sched_slot >= 0 and warp.status == READY
                                and warp.ready_at <= cycle):
                            mask |= 1 << warp.sched_slot
            self._ready_mask = mask

    def _select_warp_calendar(self, cycle: int) -> Warp | None:
        """Round-robin pick from the eligibility mask: same order and
        ``_rr`` cursor updates as the two-range scan, in O(1).

        The wheel drain and :func:`pick_slot` are inlined here (keep in
        sync with :meth:`_drain_wakes` / :func:`pick_slot`): this runs
        once per simulated cycle, and the call frames would cost more than
        the work itself. The far-heap drain stays out of line — it fires
        only under extreme DRAM queueing."""
        mask = self._ready_mask
        pos = self._wheel_pos
        if pos <= cycle:
            end = cycle + 1
            if end - pos > 512:  # == WAKE_WHEEL (all filed wakes due)
                pos = end - 512
            wheel = self._wheel
            while pos < end:
                bucket = wheel[pos & 511]
                if bucket:
                    for warp in bucket:
                        if (warp.sched_slot >= 0 and warp.status == READY
                                and warp.ready_at <= cycle):
                            mask |= 1 << warp.sched_slot
                    del bucket[:]
                pos += 1
            self._wheel_pos = end
            heap = self._wake_heap
            if heap and heap[0] <= cycle:
                buckets = self._wake_buckets
                while heap and heap[0] <= cycle:
                    for warp in buckets.pop(heappop(heap)):
                        if (warp.sched_slot >= 0 and warp.status == READY
                                and warp.ready_at <= cycle):
                            mask |= 1 << warp.sched_slot
            self._ready_mask = mask
        if not mask:
            return None
        rr = self._rr
        high = mask >> rr
        if high:
            index = rr + ((high & -high).bit_length() - 1)
        else:
            low = mask & ((1 << rr) - 1)
            index = (low & -low).bit_length() - 1
        self._ready_mask = mask & ~(1 << index)
        warps = self.warps
        self._rr = index + 1 if index + 1 < len(warps) else 0
        return warps[index]

    def _issue(self, warp: Warp, cycle: int) -> None:
        # Inlined executor.execute (keep the two in sync): dispatch to the
        # compiled per-PC plan without an extra call frame.
        machine = self.machine
        top = warp.stack.entries[-1]
        pc = top.pc
        plans = machine.plans
        if not 0 <= pc < len(plans):
            raise ExecutionError("PC outside program", pc=pc)
        if warp.status == FINISHED or top.count == 0:
            raise ExecutionError("issued a warp with no active lanes", pc=pc)
        warp.issued_instructions += 1
        mask = top.mask
        if mask is warp._commit_mask:
            warp._commit_count += 1
        else:
            warp.flush_commits()
            warp._commit_mask = mask
            warp._commit_count = 1
        plan = plans[pc]
        if plan is None:
            plan = machine.plan_for(pc)
        result = plan(warp, top)
        stats = self.stats
        stats.issued_instructions += 1
        active = result.active
        stats.committed_thread_instructions += active
        # Inlined DivergenceSampler.record_issue (keep in sync).
        div = self.divergence
        bucket = (active - 1) // div._per_bucket
        if bucket >= NUM_W_BUCKETS:
            bucket = NUM_W_BUCKETS - 1
        issues = div.issues
        index = cycle // div.window
        if index >= len(issues):
            div._bucket_for(cycle)
        issues[index][bucket] += 1
        probe = self.probe
        if probe is not None:
            probe.on_issue(cycle, active, result.kind)
        config = self.config
        if result.simple:
            # Cached ALU/CONTROL outcome: latency is its only effect.
            warp.ready_at = cycle + config.alu_latency
            if probe is not None:
                warp.wait_kind = WAIT_PIPE
            return
        if result.kind in (ALU, CONTROL):
            warp.ready_at = cycle + config.alu_latency
            if probe is not None:
                warp.wait_kind = WAIT_PIPE
        elif result.kind == ONCHIP:
            penalty = result.conflict_penalty
            warp.ready_at = cycle + config.onchip_latency + penalty
            if probe is not None:
                warp.wait_kind = WAIT_PIPE
            if penalty:
                self.stall_until = max(self.stall_until, cycle + 1 + penalty)
                stats.bank_conflict_cycles += penalty
                if probe is not None:
                    self._stall_cause = STALL_BANK_CONFLICT
            if result.is_store:
                stats.onchip_write_words += result.onchip_words
            else:
                stats.onchip_read_words += result.onchip_words
        elif result.kind == OFFCHIP:
            if result.addresses is None or result.addresses.size == 0:
                warp.ready_at = cycle + config.alu_latency
                if probe is not None:
                    warp.wait_kind = WAIT_PIPE
            else:
                done = self.dram.access(cycle, result.addresses,
                                        result.is_store)
                # Atomics serialize lanes touching the same data.
                warp.ready_at = done + result.conflict_penalty
                if probe is not None:
                    warp.wait_kind = WAIT_DRAM
        elif result.kind == SPAWN:
            warp.ready_at = cycle + config.alu_latency
            if probe is not None:
                warp.wait_kind = WAIT_PIPE
            if self.spawn_unit is None:
                raise SchedulingError(
                    "spawn instruction executed without spawn hardware "
                    "(enable config.spawn.enabled)")
            if self._convert_uniform_spawn_to_branch(warp, result):
                return
            request = result.spawn
            penalty = self.spawn_unit.spawn(request.kernel_name,
                                            request.pointers)
            self._admission_dirty = True  # pool/FIFO state changed
            stats.spawn_instructions += 1
            stats.threads_spawned += int(request.pointers.size)
            stats.onchip_write_words += int(request.pointers.size)
            if probe is not None:
                probe.on_spawn(cycle, request.kernel_name,
                               int(request.pointers.size))
            if penalty:
                self.stall_until = max(self.stall_until, cycle + 1 + penalty)
                stats.bank_conflict_cycles += penalty
                if probe is not None:
                    self._stall_cause = STALL_SPAWN_CONFLICT
            stats.full_warps_formed = self.spawn_unit.full_warps_formed
        elif result.kind == BARRIER:
            self._arrive_at_barrier(warp, cycle)
        stats.rays_completed += result.completions
        if result.exited_lanes:
            stats.threads_exited += result.exited_lanes
        if result.freed_data_addresses.size and self.spawn_unit is not None:
            self.spawn_unit.free_data_addresses(result.freed_data_addresses)
            self._admission_dirty = True  # data slots returned
        if result.warp_finished:
            self._retire_warp(warp, cycle)

    def record_thread_commits(self, warp: Warp) -> None:
        """Fold a warp's per-lane commit counts into per-thread totals.

        Only launch-time threads (non-negative tids) are recorded; they
        drive the MIMD-theoretical model of the original scalar algorithm.
        """
        recorded = (warp.tids >= 0) & (warp.lane_commits > 0)
        for tid, count in zip(warp.tids[recorded].tolist(),
                              warp.lane_commits[recorded].tolist()):
            self.thread_commits[tid] = self.thread_commits.get(tid, 0) + count

    def _arrive_at_barrier(self, warp: Warp, cycle: int) -> None:
        """Block-wide barrier: stall until every live warp of the block
        arrives (paper §IX future work; block scheduling only, since warp
        scheduling may split a block across scheduling slots)."""
        block_id = self._block_of_warp.get(warp.warp_id)
        if block_id is None:
            raise SchedulingError(
                "bar requires block scheduling (thread scheduling has no "
                "synchronization support; paper §VI)")
        waiting = self._barriers.setdefault(block_id, [])
        waiting.append(warp)
        warp.status = BLOCKED
        if len(waiting) == self._block_live.get(block_id, 0):
            calendar = self._calendar
            for blocked in waiting:
                blocked.status = READY
                blocked.ready_at = cycle + 1
                blocked.wait_kind = WAIT_PIPE
                if calendar:
                    self._schedule_wake(blocked, cycle + 1)
            del self._barriers[block_id]

    def _convert_uniform_spawn_to_branch(self, warp: Warp, result) -> bool:
        """Paper §IX future work: when every live thread of a warp spawns
        to the same µ-kernel, branch there instead of creating children.

        The warp jumps straight to the µ-kernel entry (skipping its own
        exit); since the state was just saved and ``spawnMemAddr`` still
        resolves to the same thread-data slots, the µ-kernel prologue
        reloads correctly. Only dynamic warps qualify — launch warps hold
        a direct data-slot pointer in ``spawnMemAddr``, which the child
        prologue's extra indirection would misinterpret — and only when no
        other control path is pending on the SIMT stack.
        """
        if self.config.spawn.spawn_when_uniform:
            return False  # naïve mode: always spawn (the paper's default)
        if not warp.is_dynamic or warp.stack.depth != 1:
            return False
        request = result.spawn
        if request.pointers.size != warp.active_count:
            return False
        # Only fully-populated warps skip the spawn: a full warp gains
        # nothing from re-forming, while a partial warp must still spawn
        # so its threads can regroup with others into a full warp.
        if warp.active_count != self.config.warp_size:
            return False
        # Continue in place: undo the spawned flag (no children created)
        # and redirect the whole warp to the µ-kernel entry.
        warp.spawned_flag[warp.active_mask()] = False
        warp.stack.top.pc = request.target_pc
        self.stats.uniform_spawn_branches += 1
        return True

    def _retire_warp(self, warp: Warp, cycle: int) -> None:
        self._admission_dirty = True  # slot, block and region state change
        if self.probe is not None:
            self.probe.on_warp_retire(cycle, warp)
        self.record_thread_commits(warp)
        if warp.formation_region >= 0 and self.spawn_unit is not None:
            self.spawn_unit.release_region(warp.formation_region)
        self.warps.remove(warp)
        self._rr = 0 if not self.warps else self._rr % len(self.warps)
        if self._calendar:
            # Close the retired warp's mask slot: clear its bit, slide
            # every higher bit (and the slots they name) down one to
            # mirror the list removal above.
            slot = warp.sched_slot
            warp.sched_slot = -1
            low = (1 << slot) - 1
            mask = self._ready_mask & ~(1 << slot)
            self._ready_mask = (mask & low) | ((mask >> 1) & ~low)
            for later in self.warps[slot:]:
                later.sched_slot -= 1
        self.stats.warps_completed += 1
        block_id = self._block_of_warp.pop(warp.warp_id, None)
        if block_id is not None:
            self._block_live[block_id] -= 1
            if self._block_live[block_id] == 0:
                del self._block_live[block_id]
            elif block_id in self._barriers:
                # A sibling exited; the barrier may now be complete.
                waiting = self._barriers[block_id]
                if len(waiting) == self._block_live[block_id]:
                    calendar = self._calendar
                    for blocked in waiting:
                        blocked.status = READY
                        blocked.ready_at = cycle + 1
                        blocked.wait_kind = WAIT_PIPE
                        if calendar:
                            self._schedule_wake(blocked, cycle + 1)
                    del self._barriers[block_id]
        self.try_schedule(cycle)
