"""Off-chip memory: functional storage plus a DRAM timing model.

Functional side — :class:`GlobalMemory` — is a flat array of words
(one word models 4 bytes; see :data:`repro.config.BYTES_PER_WORD`) holding
the scene, rays, per-ray traversal stacks, and results. A designated
*result range* lets the machine count ray completions as the kernel writes
them (the paper measures rays/second the same way: rays finished over
simulated time).

Timing side — :class:`DRAM` — models the paper's Table I memory partition:
``num_modules`` independent modules, address-interleaved at transaction
granularity, each moving ``bandwidth_bytes_per_cycle``; warp accesses are
first coalesced into 64-byte segments (one transaction each), queued at
their module, and the warp resumes when its last transaction completes.
``ideal=True`` gives the zero-latency, infinite-bandwidth memory used for
the paper's theoretical results (Figure 10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import BYTES_PER_WORD, MemoryConfig
from repro.errors import MemoryError_


class GlobalMemory:
    """Flat word-addressed functional memory shared by all SMs."""

    def __init__(self, num_words: int):
        if num_words <= 0:
            raise MemoryError_("memory size must be positive")
        self.words = np.zeros(num_words, dtype=np.float64)
        self.result_base = -1
        self.result_words = 0
        self.result_stride = 2
        self._completed = set()

    @property
    def num_words(self) -> int:
        return self.words.shape[0]

    def set_result_range(self, base: int, num_words: int, stride: int = 2) -> None:
        """Declare [base, base+num_words) as the per-ray result region."""
        if not (0 <= base and base + num_words <= self.num_words):
            raise MemoryError_("result range outside memory")
        self.result_base = base
        self.result_words = num_words
        self.result_stride = stride
        self._completed = set()

    def _check(self, addresses: np.ndarray) -> None:
        if addresses.size == 0:
            return
        lo = int(addresses.min())
        hi = int(addresses.max())
        if lo < 0 or hi >= self.num_words:
            raise MemoryError_(
                f"global access out of range: [{lo}, {hi}] not in "
                f"[0, {self.num_words})")

    def read(self, addresses: np.ndarray) -> np.ndarray:
        addresses = np.asarray(addresses, dtype=np.int64)
        self._check(addresses)
        return self.words[addresses]

    def write(self, addresses: np.ndarray, values: np.ndarray) -> int:
        """Write values; returns the number of *new* ray completions."""
        addresses = np.asarray(addresses, dtype=np.int64)
        self._check(addresses)
        self.words[addresses] = values
        if self.result_base < 0:
            return 0
        offsets = addresses - self.result_base
        hits = offsets[(offsets >= 0) & (offsets < self.result_words)]
        hits = hits[hits % self.result_stride == 0]
        if hits.size == 0:
            return 0
        completed = self._completed
        fresh = [ray for ray in np.unique(hits // self.result_stride).tolist()
                 if ray not in completed]
        completed.update(fresh)
        return len(fresh)

    @property
    def rays_completed(self) -> int:
        return len(self._completed)

    def load_array(self, base: int, array: np.ndarray) -> None:
        """Bulk-initialize memory at ``base`` with a flattened array."""
        flat = np.asarray(array, dtype=np.float64).reshape(-1)
        if base < 0 or base + flat.size > self.num_words:
            raise MemoryError_("load_array outside memory")
        self.words[base:base + flat.size] = flat


@dataclass
class _Transaction:
    segment: int
    is_store: bool
    complete_at: int


class DRAM:
    """Timing model for the interleaved memory partition."""

    def __init__(self, config: MemoryConfig):
        config.validate()
        self.config = config
        self.segment_words = config.segment_bytes // BYTES_PER_WORD
        self.transfer_cycles = max(
            1, config.segment_bytes // config.bandwidth_bytes_per_cycle)
        #: Next-free cycle per module. A plain int list: the access path
        #: reads/writes one or two entries per warp access, where list
        #: indexing beats ndarray element access by a wide margin.
        self.module_free = [0] * config.num_modules
        self.read_bytes = 0
        self.write_bytes = 0
        self.transactions = 0
        #: Optional observability probe (see repro.obs); attached by the
        #: GPU when tracing is enabled, never consulted otherwise.
        self.probe = None

    def coalesce(self, addresses: np.ndarray) -> np.ndarray:
        """Distinct segment indices touched by the given word addresses."""
        addresses = np.asarray(addresses, dtype=np.int64)
        return np.unique(addresses // self.segment_words)

    def access(self, cycle: int, addresses: np.ndarray, is_store: bool) -> int:
        """Issue a warp's coalesced access; returns the completion cycle.

        Each distinct 64-byte segment becomes one transaction routed to
        module ``segment % num_modules``; a transaction occupies its module
        for ``transfer_cycles`` and completes ``latency_cycles`` later.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        # Set-based dedup: warp accesses carry at most warp_size addresses,
        # where a Python set beats np.unique (which sorts). The coalesce()
        # method keeps the sorted-ndarray contract for external callers;
        # nothing below depends on segment order.
        segments = set((addresses // self.segment_words).tolist())
        num_segments = len(segments)
        if num_segments == 0:
            return cycle
        bytes_moved = num_segments * self.config.segment_bytes
        if is_store:
            self.write_bytes += bytes_moved
        else:
            self.read_bytes += bytes_moved
        self.transactions += num_segments
        if self.probe is not None:
            self.probe.on_dram_access(cycle, num_segments, is_store)
        if self.config.ideal:
            return cycle + 1
        module_free = self.module_free
        num_modules = self.config.num_modules
        transfer = self.transfer_cycles
        if num_segments == 1:
            module = next(iter(segments)) % num_modules
            finish = max(module_free[module], cycle) + transfer
            module_free[module] = finish
            return finish + self.config.latency_cycles
        # Same-cycle transactions at one module serialize back-to-back, so
        # the module's last finish is max(free, now) + count * transfer —
        # identical to queueing them one at a time.
        counts: dict[int, int] = {}
        for segment in segments:
            module = segment % num_modules
            counts[module] = counts.get(module, 0) + 1
        worst = 0
        for module, count in counts.items():
            finish = max(module_free[module], cycle) + count * transfer
            module_free[module] = finish
            if finish > worst:
                worst = finish
        return worst + self.config.latency_cycles
