"""Warp context: lane registers, predicates, SIMT stack, schedule state."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simt.stack import ReconvergenceStack

#: Number of predicate registers per lane.
NUM_PREDICATES = 8

#: Warp scheduler states.
READY = "ready"       # may issue when ready_at <= cycle
PENDING = "pending"   # waiting on a memory response
BLOCKED = "blocked"   # waiting at a block barrier
FINISHED = "finished"  # all lanes exited; slot reclaimable


@dataclass
class Warp:
    """One warp's architectural and scheduling state.

    ``regs`` is (num_regs, warp_size) float64 — lane-vectorized so the
    executor can run a whole warp instruction with a handful of numpy ops.
    ``tids`` holds each lane's logical thread id (the ray index for
    launch-time threads; reassigned for dynamically spawned threads).
    ``spawn_addr`` models the paper's ``spawnMemAddr`` special register.
    """

    warp_id: int
    warp_size: int
    num_regs: int
    tids: np.ndarray
    active_at_launch: np.ndarray
    regs: np.ndarray = field(init=False)
    preds: np.ndarray = field(init=False)
    reg_rows: list = field(init=False, repr=False)
    """Cached per-register row views of ``regs``; the executor indexes
    these instead of slicing the 2D array on every operand fetch. Valid
    because ``regs`` is only ever written in place, never rebound."""
    pred_rows: list = field(init=False, repr=False)
    spawn_addr: np.ndarray = field(init=False)
    spawned_flag: np.ndarray = field(init=False)
    data_slot_addr: np.ndarray = field(init=False)
    _lane_commits: np.ndarray = field(init=False, repr=False)
    _commit_mask: np.ndarray | None = field(init=False, default=None,
                                            repr=False)
    _commit_count: int = field(init=False, default=0, repr=False)
    stack: ReconvergenceStack = field(init=False)
    status: str = READY
    ready_at: int = 0
    wait_kind: str = "pipe"
    """What the warp is waiting for until ``ready_at`` ("pipe" for
    ALU/on-chip pipeline latency, "dram" for an off-chip access). Only
    maintained while a probe is attached (see :mod:`repro.obs`); the
    scheduler never reads it."""
    sched_slot: int = -1
    """Index of this warp in its SM's ``warps`` list, or -1 when not
    resident. Maintained by the SM only under the calendar scheduler
    (``config.scheduler == "calendar"``), where it names the warp's bit in
    the SM's issue-eligibility mask; the scan scheduler never reads it.
    Slots above a retired warp shift down with the list."""
    is_dynamic: bool = False
    kernel_name: str = ""
    issued_instructions: int = 0
    formation_region: int = -1
    """Spawn-memory warp-formation region owned by this (dynamic) warp;
    released back to the spawn unit when the warp retires."""
    run_left: int = field(init=False, default=0, repr=False)
    """Remaining accounting-only issues of the deferred instruction run
    this warp is inside (batched backend only; always 0 under the
    reference executor)."""
    run_entry: object = field(init=False, default=None, repr=False)
    """Stack-top entry captured when the current run was entered."""
    run_batch: object = field(init=False, default=None, repr=False)
    """Pending :class:`repro.simt.batched.RunBatch` whose deferred
    functional effects this warp still awaits, if any."""

    def __post_init__(self) -> None:
        self.tids = np.asarray(self.tids, dtype=np.int64)
        self.active_at_launch = np.asarray(self.active_at_launch, dtype=bool)
        if self.tids.shape != (self.warp_size,):
            raise ValueError("tids must have warp_size entries")
        self.regs = np.zeros((self.num_regs, self.warp_size), dtype=np.float64)
        self.preds = np.zeros((NUM_PREDICATES, self.warp_size), dtype=bool)
        self.reg_rows = list(self.regs)
        self.pred_rows = list(self.preds)
        self.spawn_addr = np.zeros(self.warp_size, dtype=np.int64)
        self.spawned_flag = np.zeros(self.warp_size, dtype=bool)
        self.data_slot_addr = np.full(self.warp_size, -1, dtype=np.int64)
        self._lane_commits = np.zeros(self.warp_size, dtype=np.int64)
        self.stack = ReconvergenceStack.initial(0, self.active_at_launch)

    @staticmethod
    def launch(warp_id: int, warp_size: int, num_regs: int, entry_pc: int,
               tids: np.ndarray, active: np.ndarray,
               is_dynamic: bool = False, kernel_name: str = "") -> "Warp":
        warp = Warp(warp_id=warp_id, warp_size=warp_size, num_regs=num_regs,
                    tids=tids, active_at_launch=active)
        warp.stack = ReconvergenceStack.initial(entry_pc, warp.active_at_launch)
        warp.is_dynamic = is_dynamic
        warp.kernel_name = kernel_name
        return warp

    @property
    def pc(self) -> int:
        return self.stack.top.pc

    @property
    def lane_commits(self) -> np.ndarray:
        """Per-lane committed-instruction counts.

        The issue path batches commits per stack-entry mask (mask arrays
        are never mutated in place — divergence and lane retirement always
        install fresh arrays — so consecutive issues under the identical
        mask object can be folded into one count). Reading this property
        flushes the pending batch, so observers always see exact totals.
        """
        self.flush_commits()
        return self._lane_commits

    def flush_commits(self) -> None:
        """Fold the pending (mask, count) batch into ``_lane_commits``."""
        if self._commit_count:
            self._lane_commits[self._commit_mask] += self._commit_count
            self._commit_count = 0

    def active_mask(self) -> np.ndarray:
        if self.status == FINISHED or self.stack.empty:
            return np.zeros(self.warp_size, dtype=bool)
        return self.stack.active_mask()

    @property
    def active_count(self) -> int:
        if self.status == FINISHED or self.stack.empty:
            return 0
        return self.stack.active_count()

    @property
    def done(self) -> bool:
        return self.status == FINISHED

    def finish_if_empty(self) -> bool:
        """Mark FINISHED when no lanes remain; returns True if finished."""
        if self.status != FINISHED and self.stack.empty:
            self.status = FINISHED
            return True
        return False
