"""Dynamic Warp Formation baseline (Fung et al., MICRO 2007).

The paper's closest related work: instead of spawning new threads, DWF
regroups *existing* threads into fresh warps whenever control flow splits
them — threads with equal next-PC are gathered into one issue group each
cycle (majority-PC policy). No code changes and no spawn memory are
needed, but the register file must support thread migration.

This model is the *idealized lane-flexible* variant: threads may occupy
any lane of a formed group (Fung's crossbar design), and regrouping is
free. It therefore upper-bounds DWF — useful as the ablation DESIGN.md
calls for (how much of the µ-kernel win could regrouping alone recover?).

Implementation note: execution reuses the lockstep executor by gathering
the group's register columns into a transient :class:`Warp`, executing one
instruction, then scattering results back and reading each thread's next
PC off the transient SIMT stack.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import GPUConfig
from repro.errors import ConfigError, SchedulingError
from repro.simt.banked import BankedMemory
from repro.simt.executor import ALU, CONTROL, OFFCHIP, ONCHIP, MachineState, execute
from repro.simt.memory import DRAM, GlobalMemory
from repro.simt.stats import DivergenceSampler, SMStats
from repro.simt.warp import NUM_PREDICATES, Warp


@dataclass
class DWFResult:
    """Aggregate results of a DWF simulation."""

    cycles: int
    stats: SMStats
    divergence: DivergenceSampler
    rays_completed: int

    @property
    def ipc(self) -> float:
        return self.stats.committed_thread_instructions / self.cycles if self.cycles else 0.0

    @property
    def simt_efficiency(self) -> float:
        issued = self.stats.issued_instructions
        if not issued:
            return 0.0
        return (self.stats.committed_thread_instructions
                / (issued * self._warp_size))

    _warp_size: int = 32

    def rays_per_second(self, config: GPUConfig,
                        scale_to_sms: int | None = None) -> float:
        if self.cycles == 0:
            return 0.0
        seconds = self.cycles / (config.clock_ghz * 1e9)
        rays = self.rays_completed / seconds
        if scale_to_sms is not None:
            rays *= scale_to_sms / config.num_sms
        return rays


class DWFCore:
    """One SM executing with idealized dynamic warp formation."""

    def __init__(self, config: GPUConfig, machine: MachineState,
                 dram: DRAM, *, entry_pc: int, num_regs: int,
                 num_threads: int, divergence_window: int = 1000):
        if num_threads <= 0:
            raise ConfigError("DWF core needs at least one thread")
        self.config = config
        self.machine = machine
        self.dram = dram
        self.num_regs = num_regs
        self.regs = np.zeros((num_regs, num_threads))
        self.preds = np.zeros((NUM_PREDICATES, num_threads), dtype=bool)
        self.pcs = np.full(num_threads, entry_pc, dtype=np.int64)
        self.ready_at = np.zeros(num_threads, dtype=np.int64)
        self.alive = np.ones(num_threads, dtype=bool)
        self.tids = np.arange(num_threads, dtype=np.int64)
        self.stats = SMStats()
        self.stats.threads_launched = num_threads
        self.divergence = DivergenceSampler(warp_size=config.warp_size,
                                            window=divergence_window)

    @property
    def done(self) -> bool:
        return not bool(self.alive.any())

    def next_event_time(self, now: int) -> int | None:
        """Earliest cycle >= ``now`` a thread becomes ready (fast-forward).

        Every alive thread's wake-up is its ``ready_at`` (set at issue
        time from ALU/memory latency); DWF has no stalls, barriers, or
        admission queues, so nothing else can change core state.
        """
        if self.done:
            return None
        earliest = int(self.ready_at[self.alive].min())
        return max(earliest, now)

    def credit_skipped(self, start: int, stop: int) -> None:
        """Credit the fast-forwarded span [start, stop) as idle cycles."""
        if stop <= start or self.done:
            return
        self.stats.cycles += stop - start
        self.stats.idle_cycles += stop - start
        self.divergence.record_idle_span(start, stop)

    def _select_group(self, cycle: int) -> np.ndarray | None:
        """Majority-PC policy: the ready PC with the most threads wins."""
        ready = self.alive & (self.ready_at <= cycle)
        if not ready.any():
            return None
        ready_pcs = self.pcs[ready]
        values, counts = np.unique(ready_pcs, return_counts=True)
        best_pc = values[int(np.argmax(counts))]
        members = np.nonzero(ready & (self.pcs == best_pc))[0]
        return members[:self.config.warp_size]

    def step(self, cycle: int) -> bool:
        if self.done:
            return False
        self.stats.cycles += 1
        group = self._select_group(cycle)
        if group is None:
            self.stats.idle_cycles += 1
            self.divergence.record_idle(cycle)
            return False
        self._issue(group, cycle)
        return True

    def _issue(self, group: np.ndarray, cycle: int) -> None:
        size = group.size
        warp = Warp.launch(0, size, self.num_regs,
                           int(self.pcs[group[0]]), self.tids[group],
                           np.ones(size, dtype=bool))
        warp.regs[:, :] = self.regs[:, group]
        warp.preds[:, :] = self.preds[:, group]
        result = execute(warp, self.machine)
        self.regs[:, group] = warp.regs
        self.preds[:, group] = warp.preds
        # Scatter next PCs: every surviving lane sits in some stack entry.
        survivors = np.zeros(size, dtype=bool)
        for entry in warp.stack.entries:
            lanes = np.nonzero(entry.mask)[0]
            self.pcs[group[lanes]] = entry.pc
            survivors[lanes] = True
        retired = group[~survivors]
        if retired.size:
            self.alive[retired] = False
            self.stats.threads_exited += int(retired.size)
        config = self.config
        if result.kind in (ALU, CONTROL):
            ready = cycle + config.alu_latency
        elif result.kind == ONCHIP:
            ready = cycle + config.onchip_latency + result.conflict_penalty
        elif result.kind == OFFCHIP:
            if result.addresses is None or result.addresses.size == 0:
                ready = cycle + config.alu_latency
            else:
                ready = (self.dram.access(cycle, result.addresses,
                                          result.is_store)
                         + result.conflict_penalty)
        else:
            raise SchedulingError("DWF does not support spawn instructions; "
                                  "run the traditional kernel")
        self.ready_at[group] = ready
        self.stats.issued_instructions += 1
        self.stats.committed_thread_instructions += result.active
        self.stats.rays_completed += result.completions
        self.divergence.record_issue(cycle, result.active)


def run_dwf(config: GPUConfig, program, entry_kernel: str,
            global_mem: GlobalMemory, const_mem: np.ndarray,
            num_threads: int, *, max_cycles: int | None = None,
            divergence_window: int = 1000,
            shared_mem: BankedMemory | None = None,
            snapshot=None) -> DWFResult:
    """Simulate ``num_threads`` threads on one DWF-enabled SM.

    Thread count should match what one SM of the baseline machine would
    hold (occupancy x warp slots); it is a parameter so ablations can vary
    residency independently. ``shared_mem`` substitutes the internally
    built on-chip memory and ``snapshot`` attaches a
    :class:`repro.simt.snapshot.SnapshotRecorder` — both exist so the
    conformance fuzzer can compare DWF's shared-memory image and exit
    register files against the other models.

    ``config.executor`` is accepted but has no effect here: DWF re-forms
    a transient warp for every issue, so there is no stable straight-line
    run to defer — the reference interpreter *is* the batched backend's
    behaviour for this model (trivially bit-identical).
    ``config.scheduler`` is likewise a no-op: DWF picks from its own
    thread pool with a scheduler of its own and never constructs an
    :class:`repro.simt.sm.SM`, so there is no warp scan to replace with
    a wake calendar.
    """
    from repro.isa.cfg import reconvergence_table

    shared = shared_mem if shared_mem is not None else BankedMemory(
        config.onchip_memory_bytes // 4, model_conflicts=False)
    machine = MachineState(
        program=program, global_mem=global_mem,
        const_mem=np.asarray(const_mem, dtype=np.float64),
        shared_mem=shared, spawn_mem=shared,
        reconv_table=reconvergence_table(program))
    machine.snapshot = snapshot
    dram = DRAM(config.memory)
    entry_pc = program.kernels[entry_kernel].entry_pc
    num_regs = program.max_register_index() + 1
    core = DWFCore(config, machine, dram, entry_pc=entry_pc,
                   num_regs=num_regs, num_threads=num_threads,
                   divergence_window=divergence_window)
    budget = max_cycles if max_cycles is not None else config.max_cycles
    fast = config.fast_forward
    cycle = 0
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        while cycle < budget and not core.done:
            progressed = core.step(cycle)
            cycle += 1
            if fast and not progressed and cycle < budget and not core.done:
                target = core.next_event_time(cycle)
                target = budget if target is None else min(target, budget)
                if target > cycle:
                    core.credit_skipped(cycle, target)
                    cycle = target
    core.stats.dram_read_bytes = dram.read_bytes
    core.stats.dram_write_bytes = dram.write_bytes
    result = DWFResult(cycles=cycle, stats=core.stats,
                       divergence=core.divergence,
                       rays_completed=global_mem.rays_completed)
    result._warp_size = config.warp_size
    return result
