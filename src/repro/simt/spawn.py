"""Dynamic thread creation hardware: LUT, partial-warp pool, warp FIFO.

Implements paper §IV. Per SM, the spawn memory space is split into:

1. **Thread-data section** — one ``state_words`` slot per residentable
   thread; parents store their state here before spawning and children load
   it back (Example 2). Launch-time threads receive a slot directly in
   ``spawnMemAddr``; a slot is freed when a thread chain ends (a thread
   exits without having spawned).
2. **Warp-formation section** — consecutive words holding each forming
   warp's per-thread metadata (the pointer to the thread-data slot). The
   PC-indexed LUT tracks, per µ-kernel, the current warp's write address,
   an overflow address for the next warp, and a thread counter. When the
   counter crosses the warp size, the finished warp's address is pushed
   into the new-warp FIFO (§IV-C).

Scheduling (§IV-D): dynamic warps take priority over unscheduled launch
threads; partially-formed warps are flushed (lowest µ-kernel PC first) only
when the scheduler has nothing else left to run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SchedulingError
from repro.simt.banked import BankedMemory


@dataclass
class FormedWarp:
    """A dynamically formed warp awaiting a free warp slot."""

    kernel_name: str
    entry_pc: int
    formation_addresses: np.ndarray  # per-thread metadata address
    data_pointers: np.ndarray        # per-thread thread-data slot pointer
    region: int = -1                 # formation region owned until retirement
    is_partial: bool = False

    @property
    def num_threads(self) -> int:
        return int(self.formation_addresses.size)


@dataclass
class _LUTEntry:
    """One line of the spawn LUT (paper Figure 5)."""

    kernel_name: str
    entry_pc: int
    current_addr: int     # first memory address: current warp under formation
    overflow_addr: int    # second memory address: next warp's base
    count: int = 0        # threads already in the partial warp
    pointers: list[int] = field(default_factory=list)
    addresses: list[int] = field(default_factory=list)


class SpawnUnit:
    """Per-SM dynamic thread creation and warp formation hardware.

    Scheduling note: every state change here that can unblock admission
    (a spawn filling a formation region, freed data slots, a flushed
    partial pool) happens inside an owning SM's issue or retirement, and
    those paths re-arm ``SM._admission_dirty``. The calendar scheduler's
    run loop relies on that: an SM with a clean admission flag and an
    empty ready mask can sleep until its next warp wake without polling
    the spawn unit."""

    def __init__(self, spawn_mem: BankedMemory, *, warp_size: int,
                 data_base: int, num_data_slots: int, state_words: int,
                 formation_base: int, formation_words: int,
                 kernels: list):
        """``kernels``: KernelInfo list of all spawnable µ-kernels
        (LUT entries, ordered by entry PC as the flush policy requires)."""
        if num_data_slots <= 0:
            raise SchedulingError("spawn unit needs at least one data slot")
        if formation_words < warp_size:
            raise SchedulingError("formation region smaller than one warp")
        self.spawn_mem = spawn_mem
        self.warp_size = warp_size
        self.data_base = data_base
        self.state_words = state_words
        self.formation_base = formation_base
        self.formation_words = formation_words
        num_regions = formation_words // warp_size
        self._free_regions = [formation_base + r * warp_size
                              for r in range(num_regions - 1, -1, -1)]
        self.free_slots = list(range(num_data_slots - 1, -1, -1))
        self.num_data_slots = num_data_slots
        self.fifo: list[FormedWarp] = []
        self.lut: dict[str, _LUTEntry] = {}
        for info in sorted(kernels, key=lambda k: k.entry_pc):
            entry = _LUTEntry(kernel_name=info.name, entry_pc=info.entry_pc,
                              current_addr=self._allocate_formation(),
                              overflow_addr=self._allocate_formation())
            self.lut[info.name] = entry
        self.threads_spawned = 0
        self.full_warps_formed = 0
        self.partial_warps_flushed = 0
        #: Optional observability probe (see repro.obs); attached by the
        #: owning SM when tracing is enabled, never consulted otherwise.
        self.probe = None

    # -- thread-data slots --------------------------------------------------

    def slot_address(self, slot: int) -> int:
        return self.data_base + slot * self.state_words

    def allocate_data_slots(self, count: int) -> np.ndarray | None:
        """Addresses for ``count`` launch threads, or None if unavailable."""
        if count > len(self.free_slots):
            return None
        slots = [self.free_slots.pop() for _ in range(count)]
        return np.array([self.slot_address(s) for s in slots], dtype=np.int64)

    def free_data_addresses(self, addresses: np.ndarray) -> None:
        """Return thread-data slots (by address) to the free pool."""
        for address in np.asarray(addresses, dtype=np.int64):
            slot = (int(address) - self.data_base) // self.state_words
            if not 0 <= slot < self.num_data_slots:
                raise SchedulingError(f"freed address {address} is not a slot")
            if slot in self.free_slots:
                raise SchedulingError(f"double free of spawn slot {slot}")
            self.free_slots.append(slot)

    @property
    def free_slot_count(self) -> int:
        return len(self.free_slots)

    # -- warp formation -------------------------------------------------------

    def _allocate_formation(self) -> int:
        """Claim a warp-sized region of the formation section.

        The paper doubles the formation allocation so that reuse never
        clobbers a warp still in flight; we make the liveness explicit with
        a free list — a region stays owned from allocation until the warp
        formed in it retires (:meth:`release_region`).
        """
        if not self._free_regions:
            raise SchedulingError(
                "spawn warp-formation region exhausted; more warps are in "
                "flight than the paper's sizing rule allows")
        return self._free_regions.pop()

    def release_region(self, region: int) -> None:
        """Return a formation region once its warp has retired."""
        if region < 0:
            return
        if region in self._free_regions:
            raise SchedulingError(f"double release of formation region {region}")
        self._free_regions.append(region)

    def spawn(self, kernel_name: str, pointers: np.ndarray) -> int:
        """Process one spawn instruction's active lanes.

        Stores each new thread's metadata (its thread-data pointer) at
        sequential formation addresses, updates the LUT, and pushes any
        completed warps into the FIFO. Returns the bank-conflict penalty of
        the metadata store (sequential addresses are conflict-free on real
        hardware; the model confirms it).
        """
        entry = self.lut.get(kernel_name)
        if entry is None:
            raise SchedulingError(f"spawn to unknown µ-kernel {kernel_name!r}")
        pointers = np.asarray(pointers, dtype=np.int64)
        total = int(pointers.size)
        if total == 0:
            return 0
        # Threads land at sequential formation addresses; process them one
        # partial-warp chunk at a time so a completed warp rolls the LUT
        # entry over to its overflow region exactly as per-thread insertion
        # would.
        store_addresses = np.empty(total, dtype=np.int64)
        position = 0
        while position < total:
            take = min(self.warp_size - entry.count, total - position)
            first = entry.current_addr + entry.count
            chunk = np.arange(first, first + take, dtype=np.int64)
            store_addresses[position:position + take] = chunk
            entry.addresses.extend(chunk.tolist())
            entry.pointers.extend(
                pointers[position:position + take].tolist())
            entry.count += take
            position += take
            self.threads_spawned += take
            if entry.count == self.warp_size:
                self._complete_warp(entry)
        # Formation addresses are spawn-memory absolute.
        return self.spawn_mem.write(store_addresses,
                                    pointers.astype(np.float64))

    def _complete_warp(self, entry: _LUTEntry) -> None:
        warp = FormedWarp(
            kernel_name=entry.kernel_name,
            entry_pc=entry.entry_pc,
            formation_addresses=np.array(entry.addresses, dtype=np.int64),
            data_pointers=np.array(entry.pointers, dtype=np.int64),
            region=entry.current_addr,
        )
        self.fifo.append(warp)
        self.full_warps_formed += 1
        if self.probe is not None:
            self.probe.on_warp_formed(entry.kernel_name, self.warp_size)
        entry.pointers = []
        entry.addresses = []
        entry.count = 0
        entry.current_addr = entry.overflow_addr
        entry.overflow_addr = self._allocate_formation()

    # -- scheduling interface -------------------------------------------------

    @property
    def has_full_warps(self) -> bool:
        return bool(self.fifo)

    @property
    def partial_thread_count(self) -> int:
        return sum(entry.count for entry in self.lut.values())

    def pop_full_warp(self) -> FormedWarp:
        if not self.fifo:
            raise SchedulingError("new-warp FIFO is empty")
        return self.fifo.pop(0)

    def flush_partial_warp(self) -> FormedWarp | None:
        """Force out the partial warp with the lowest µ-kernel PC (§IV-D)."""
        for entry in sorted(self.lut.values(), key=lambda e: e.entry_pc):
            if entry.count > 0:
                warp = FormedWarp(
                    kernel_name=entry.kernel_name,
                    entry_pc=entry.entry_pc,
                    formation_addresses=np.array(entry.addresses, dtype=np.int64),
                    data_pointers=np.array(entry.pointers, dtype=np.int64),
                    region=entry.current_addr,
                    is_partial=True,
                )
                entry.pointers = []
                entry.addresses = []
                entry.count = 0
                entry.current_addr = entry.overflow_addr
                entry.overflow_addr = self._allocate_formation()
                self.partial_warps_flushed += 1
                if self.probe is not None:
                    self.probe.on_partial_flush(warp.kernel_name,
                                                warp.num_threads)
                return warp
        return None

    @property
    def idle(self) -> bool:
        """True when no formed or forming threads remain."""
        return not self.fifo and self.partial_thread_count == 0
