"""Architectural-state snapshot hooks for conformance checking.

The differential fuzzer (:mod:`repro.fuzz`) needs to observe each thread's
*final* register file and predicate state at the moment its lane retires —
after that the warp slot is recycled and the columns are gone. Rather than
teach every execution model to export registers, the single shared exit
plan in :mod:`repro.simt.executor` reports retiring lanes to an optional
recorder attached to the :class:`~repro.simt.executor.MachineState`. Every
model that issues through ``execute``/compiled plans (pdom_block,
pdom_warp, spawn, and DWF's transient issue groups) therefore feeds the
same recorder with zero per-model code.

The hook is ``None`` by default and every call site is guarded by
``is not None``, preserving the zero-overhead-when-off contract of
:mod:`repro.obs`.
"""

from __future__ import annotations

import numpy as np


class SnapshotRecorder:
    """Collects per-thread exit state and per-warp stack balance.

    ``exit_state`` maps each retired thread id to ``(regs, preds)`` copies
    taken at its exit instruction. Dynamically spawned threads carry
    synthetic negative tids that differ across models and schedules, so
    consumers comparing register files should restrict themselves to
    launch-time tids (``tid >= 0``); the fuzzer only does so for programs
    without spawns, where registers cannot hold model-specific addresses.
    """

    def __init__(self) -> None:
        self.exit_state: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.exit_count = 0
        self.stack_balance: list[tuple[int, int, int]] = []
        """Per finished warp: (pushes, pops, entries left on the stack)."""

    def on_exit(self, warp, mask: np.ndarray) -> None:
        """Record the retiring lanes' registers and predicates."""
        lanes = np.nonzero(mask)[0]
        self.exit_count += int(lanes.size)
        tids = warp.tids
        regs = warp.regs
        preds = warp.preds
        for lane in lanes.tolist():
            self.exit_state[int(tids[lane])] = (regs[:, lane].copy(),
                                                preds[:, lane].copy())

    def on_warp_finished(self, warp) -> None:
        """Record the finished warp's stack push/pop counters."""
        stack = warp.stack
        self.stack_balance.append(
            (stack.pushes, stack.pops, len(stack.entries)))

    def unbalanced_warps(self) -> list[tuple[int, int, int]]:
        """Finished warps whose stack pushes and pops do not cancel."""
        return [record for record in self.stack_balance
                if record[0] != record[1] or record[2] != 0]
