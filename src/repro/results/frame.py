"""Tidy tabular views of the results store.

:func:`tidy_rows` flattens store records into one flat dict per run —
pure Python, no dependencies — and :func:`frame` lifts those rows into a
pandas ``DataFrame`` for interactive analysis. pandas is an *optional*
dependency (``pip install 'repro[pandas]'``): everything the
``repro compare`` CLI needs runs on :func:`tidy_rows` alone, so the
command works in the minimal install.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["frame", "tidy_rows"]

#: Flat column order produced by :func:`tidy_rows` (stable for tests and
#: for the DataFrame's column order).
COLUMNS = (
    "scene", "mode", "ray_kind", "seed", "preset",
    "config_digest", "run_stats_digest",
    "cycles", "rays_completed", "num_rays",
    "ipc", "simt_efficiency", "rays_per_second", "verified",
    "wall_seconds", "cycles_per_second",
    "git_rev", "dirty", "timestamp", "source",
)


def tidy_rows(records: list[dict]) -> list[dict]:
    """One flat dict per store record, in :data:`COLUMNS` order.

    Nested ``job``/``metrics``/``timing``/``provenance`` sections are
    flattened; missing fields become ``None`` rather than raising, so a
    store mixing schema revisions still tabulates.
    """
    rows = []
    for record in records:
        job = record.get("job") or {}
        metrics = record.get("metrics") or {}
        timing = record.get("timing") or {}
        provenance = record.get("provenance") or {}
        flat = {
            "scene": job.get("scene"),
            "mode": job.get("mode"),
            "ray_kind": job.get("ray_kind"),
            "seed": job.get("seed"),
            "preset": job.get("preset"),
            "config_digest": record.get("config_digest"),
            "run_stats_digest": record.get("run_stats_digest"),
            "cycles": metrics.get("cycles"),
            "rays_completed": metrics.get("rays_completed"),
            "num_rays": metrics.get("num_rays"),
            "ipc": metrics.get("ipc"),
            "simt_efficiency": metrics.get("simt_efficiency"),
            "rays_per_second": metrics.get("rays_per_second"),
            "verified": metrics.get("verified"),
            "wall_seconds": timing.get("wall_seconds"),
            "cycles_per_second": timing.get("cycles_per_second"),
            "git_rev": provenance.get("git_rev"),
            "dirty": provenance.get("dirty"),
            "timestamp": provenance.get("timestamp"),
            "source": provenance.get("source"),
        }
        rows.append({column: flat[column] for column in COLUMNS})
    return rows


def frame(store_or_records):
    """The store as a tidy pandas ``DataFrame`` (one row per run).

    Accepts a :class:`~repro.results.store.ResultsStore`, a store
    directory path, or a pre-loaded record list. Raises
    :class:`~repro.errors.ConfigError` when pandas is not installed.
    """
    try:
        import pandas
    except ImportError:
        raise ConfigError(
            "repro.results.frame requires pandas, which is not installed. "
            "Install it with 'pip install pandas' (or the "
            "'repro[pandas]' extra); the pure-Python "
            "tidy_rows() and 'repro compare' work without it.") from None
    records = _records_from(store_or_records)
    return pandas.DataFrame(tidy_rows(records), columns=list(COLUMNS))


def _records_from(store_or_records) -> list[dict]:
    if isinstance(store_or_records, list):
        return store_or_records
    load = getattr(store_or_records, "load", None)
    if callable(load):
        return load()
    from repro.results.store import ResultsStore

    return ResultsStore(store_or_records).load()
