"""Run-vs-run and rev-vs-rev regression tables over the results store.

The comparison unit is a *configuration*: ``(scene, mode, ray_kind,
seed, config_digest)``. For each configuration present on both sides we
compare the tracked throughput metrics (all higher-is-better) and flag a
regression when the new value falls more than ``tolerance`` below the
old one — the same relative-tolerance rule the bench regression gate
uses, but cross-revision and driven entirely by recorded store data.

Within one side, the representative record per configuration is chosen by
:func:`latest_by_key`: clean-tree records beat dirty ones (a dirty
measurement must never out-vote the committed revision's honest point —
the same rule as :mod:`repro.results.history`), latest append wins among
equals.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.errors import ConfigError, did_you_mean

#: Metrics compared by default — all scaled so that higher is better.
DEFAULT_METRICS = ("cycles_per_second", "simt_efficiency", "rays_per_second")

#: Relative shortfall tolerated before a metric counts as regressed.
DEFAULT_TOLERANCE = 0.05

__all__ = [
    "DEFAULT_METRICS",
    "DEFAULT_TOLERANCE",
    "compare_records",
    "compare_revisions",
    "latest_by_key",
    "render_comparison",
    "revisions_in",
]


def _config_key(record: dict) -> tuple:
    job = record.get("job") or {}
    return (job.get("scene"), job.get("mode"), job.get("ray_kind"),
            job.get("seed"), record.get("config_digest"))


def _metric(record: dict, name: str):
    metrics = record.get("metrics") or {}
    if name in metrics:
        return metrics.get(name)
    timing = record.get("timing") or {}
    return timing.get(name)


def _is_dirty(record: dict) -> bool:
    return bool((record.get("provenance") or {}).get("dirty", False))


def revisions_in(records: list[dict]) -> list[str]:
    """Distinct git revisions in first-appended order."""
    seen: list[str] = []
    for record in records:
        rev = (record.get("provenance") or {}).get("git_rev")
        if rev and rev not in seen:
            seen.append(rev)
    return seen


def latest_by_key(records: list[dict]) -> dict[tuple, dict]:
    """One representative record per configuration key.

    Clean records outrank dirty ones; among records of equal dirtiness
    the latest in append order wins.
    """
    chosen: dict[tuple, dict] = {}
    for record in records:
        key = _config_key(record)
        incumbent = chosen.get(key)
        if incumbent is None:
            chosen[key] = record
        elif _is_dirty(record) and not _is_dirty(incumbent):
            continue  # a dirty point never displaces a clean one
        else:
            chosen[key] = record
    return chosen


def compare_records(old: list[dict], new: list[dict], *,
                    metrics=DEFAULT_METRICS,
                    tolerance: float = DEFAULT_TOLERANCE) -> dict:
    """Compare two record sets configuration-by-configuration.

    Returns ``{"rows": [...], "regressions": [...], "missing": [...]}``:
    one row per shared (configuration, metric) pair with old/new values
    and relative delta, the subset of rows that regressed beyond
    ``tolerance``, and the configuration keys present only on one side.
    """
    if tolerance < 0:
        raise ConfigError(f"tolerance must be non-negative, got {tolerance}")
    baseline = latest_by_key(old)
    candidate = latest_by_key(new)
    rows, regressions, missing = [], [], []
    for key in sorted(set(baseline) | set(candidate), key=str):
        if key not in baseline or key not in candidate:
            side = "baseline" if key not in baseline else "candidate"
            missing.append({"key": key, "missing_from": side})
            continue
        before, after = baseline[key], candidate[key]
        scene, mode, ray_kind, seed, _digest = key
        identical = (before.get("run_stats_digest")
                     == after.get("run_stats_digest"))
        for metric in metrics:
            old_value = _metric(before, metric)
            new_value = _metric(after, metric)
            if old_value in (None, 0) or new_value is None:
                continue  # unmeasured on one side (e.g. no wall clock)
            delta = (float(new_value) - float(old_value)) / float(old_value)
            regressed = float(new_value) < float(old_value) * (1 - tolerance)
            row = {
                "scene": scene, "mode": mode, "ray_kind": ray_kind,
                "seed": seed, "metric": metric,
                "old": float(old_value), "new": float(new_value),
                "delta": delta, "regressed": regressed,
                "identical_stats": identical,
            }
            rows.append(row)
            if regressed:
                regressions.append(row)
    return {"rows": rows, "regressions": regressions, "missing": missing}


def compare_revisions(records: list[dict], rev_a: str, rev_b: str, *,
                      metrics=DEFAULT_METRICS,
                      tolerance: float = DEFAULT_TOLERANCE) -> dict:
    """Compare two git revisions recorded in the same store.

    ``rev_a`` is the baseline, ``rev_b`` the candidate. Unknown revisions
    raise a did-you-mean :class:`~repro.errors.ConfigError` listing what
    the store actually contains.
    """
    known = revisions_in(records)
    for rev in (rev_a, rev_b):
        if rev not in known:
            raise ConfigError(
                f"revision {rev!r} has no records in this store "
                f"(known: {', '.join(known) or 'none'})."
                + did_you_mean(rev, known))
    of_rev = lambda rev: [r for r in records
                          if (r.get("provenance") or {}).get("git_rev") == rev]
    result = compare_records(of_rev(rev_a), of_rev(rev_b),
                             metrics=metrics, tolerance=tolerance)
    result["rev_a"], result["rev_b"] = rev_a, rev_b
    return result


def render_comparison(comparison: dict, *,
                      tolerance: float = DEFAULT_TOLERANCE) -> str:
    """The regression table as aligned ASCII, ready for stdout."""
    rev_a = comparison.get("rev_a")
    rev_b = comparison.get("rev_b")
    title = (f"repro compare  {rev_a} -> {rev_b}  "
             if rev_a and rev_b else "repro compare  ")
    title += f"(tolerance {tolerance:.1%})"
    rows = [{
        "scene": row["scene"], "mode": row["mode"],
        "metric": row["metric"],
        "old": f"{row['old']:.3f}", "new": f"{row['new']:.3f}",
        "delta": f"{row['delta']:+.1%}",
        "status": "REGRESSED" if row["regressed"] else "ok",
    } for row in comparison["rows"]]
    if not rows:
        return title + "\n  (no overlapping configurations to compare)"
    table = format_table(
        rows, columns=["scene", "mode", "metric", "old", "new", "delta",
                       "status"], title=title)
    lines = [table]
    for item in comparison.get("missing", []):
        scene, mode, ray_kind, seed, _digest = item["key"]
        lines.append(f"  only on one side ({item['missing_from']} missing): "
                     f"{scene}/{mode}/{ray_kind} seed={seed}")
    count = len(comparison["regressions"])
    lines.append(f"{count} regression(s)" if count else "no regressions")
    return "\n".join(lines)
