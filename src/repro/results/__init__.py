"""Results warehouse: an append-only, cross-run store of completed runs.

Sweep outputs used to be per-run artifacts — a checkpoint manifest here, a
``BENCH_*.json`` history list there — with no way to ask "did revision B
get slower than revision A on the same configuration?". This package is
that missing layer:

- :mod:`repro.results.store` — the ``repro-results/1`` JSONL store: one
  record per completed :class:`~repro.harness.runner.RunResult` /
  :class:`~repro.harness.sweep.JobResult`, keyed by the job's
  ``config_digest`` plus a ``run_stats_digest`` fingerprint, stamped with
  git revision, a working-tree ``dirty`` flag, and a timestamp. Setting
  ``REPRO_RESULTS_DIR`` opts every execution path in —
  ``api.simulate``, ``api.sweep``/``repro experiments`` (via the sweep
  driver), ``repro worker`` shards, and the serve daemon all record
  through one hook;
- :mod:`repro.results.history` — the clean-vs-dirty upsert rules shared
  by the ``BENCH_*`` per-revision history sections (a dirty-tree refresh
  may never replace a committed revision's honest point);
- :mod:`repro.results.compare` — run-vs-run and rev-vs-rev regression
  tables with a configurable tolerance, behind the ``repro compare`` CLI;
- :mod:`repro.results.frame` — a tidy one-row-per-run table, optionally
  as a pandas ``DataFrame`` (pandas is an optional dependency; the pure
  Python :func:`~repro.results.frame.tidy_rows` needs nothing extra).
"""

from repro.results.compare import (
    DEFAULT_METRICS,
    DEFAULT_TOLERANCE,
    compare_records,
    compare_revisions,
    latest_by_key,
    render_comparison,
    revisions_in,
)
from repro.results.frame import frame, tidy_rows
from repro.results.history import upsert_history
from repro.results.store import (
    RESULTS_SCHEMA,
    ResultsStore,
    default_store,
    git_provenance,
    maybe_record,
    run_record,
    stats_fingerprint,
)

__all__ = [
    "DEFAULT_METRICS",
    "DEFAULT_TOLERANCE",
    "RESULTS_SCHEMA",
    "ResultsStore",
    "compare_records",
    "compare_revisions",
    "default_store",
    "frame",
    "git_provenance",
    "latest_by_key",
    "maybe_record",
    "render_comparison",
    "revisions_in",
    "run_record",
    "stats_fingerprint",
    "tidy_rows",
    "upsert_history",
]
