"""The ``repro-results/1`` append-only JSONL results store.

One record per completed run, one JSON line per record, published with
``O_APPEND`` single-line appends (atomic for lines this short — the same
discipline the shard manifest and crash breadcrumbs rely on), so any
number of sweep workers, daemons, and CLI runs can share one store
without locking. Loading tolerates torn tail lines and foreign records,
exactly like :func:`repro.serve.wire.parse_line`.

Record shape (sorted keys on disk)::

    {
      "schema": "repro-results/1",
      "kind": "run",
      "key": [scene, mode, ray_kind, seed],
      "job": {... the full SweepJob spec ...},
      "config_digest": "<SweepJob.config_digest()>",
      "run_stats_digest": "<sha256 of the run_stats_digest document>",
      "metrics": {... deterministic counters and derived metrics ...},
      "timing": {"wall_seconds": ..., "cycles_per_second": ...},
      "provenance": {"git_rev": ..., "dirty": ..., "timestamp": ...,
                     "source": "simulate" | "sweep" | "worker"}
    }

``metrics`` is fully determined by the simulation — two identical runs
produce byte-identical ``key``/``job``/``config_digest``/
``run_stats_digest``/``metrics`` sections; only ``timing`` and
``provenance`` vary run to run. ``provenance.dirty`` comes from
``git status --porcelain`` so a point measured on an uncommitted tree can
never masquerade as the committed revision's honest number.

Opt-in hook: :func:`maybe_record` is a no-op unless ``REPRO_RESULTS_DIR``
is set. The directory value is resolved against the CWD once per process
(:func:`repro.harness.cache.resolve_env_dir`), so a worker that later
changes directory keeps appending to the same store instead of silently
opening a second one.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
import pathlib
import subprocess
from dataclasses import asdict

from repro.errors import ConfigError
from repro.harness.cache import resolve_env_dir

#: Schema tag carried by every store record (versioned alongside
#: ``repro-wire/1`` — see docs/architecture.md, "Results warehouse").
RESULTS_SCHEMA = "repro-results/1"

#: File name of the store inside its directory.
STORE_FILENAME = "results.jsonl"

_PROVENANCE_CACHE: dict[str, tuple[str, bool]] = {}


def git_provenance(cwd: str | pathlib.Path | None = None) -> tuple[str, bool]:
    """``(short git rev, dirty working tree?)`` for ``cwd``, cached.

    ``("unknown", False)`` outside a git checkout — a store written from
    an exported tarball still works, it just cannot anchor a trajectory.
    Cached per directory for the life of the process: provenance is a
    per-invocation fact, and a sweep records hundreds of runs.
    """
    key = str(pathlib.Path(cwd) if cwd is not None else pathlib.Path.cwd())
    if key not in _PROVENANCE_CACHE:
        try:
            rev = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"], cwd=key,
                capture_output=True, text=True, timeout=10,
                check=True).stdout.strip()
            status = subprocess.run(
                ["git", "status", "--porcelain"], cwd=key,
                capture_output=True, text=True, timeout=10,
                check=True).stdout
            _PROVENANCE_CACHE[key] = (rev, bool(status.strip()))
        except Exception:
            _PROVENANCE_CACHE[key] = ("unknown", False)
    return _PROVENANCE_CACHE[key]


def stats_fingerprint(stats) -> str:
    """Short content hash of a run's full ``run_stats_digest`` document.

    Two runs with equal fingerprints executed identically for every
    reported counter (the digest covers the complete divergence histogram
    and per-thread commits); the fingerprint is what store records carry
    so rev-over-rev identity checks stay one string compare.
    """
    from repro.harness.sweep import run_stats_digest

    document = run_stats_digest(stats)
    payload = json.dumps(document, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _job_for(result, seed: int = 0):
    """The :class:`~repro.harness.sweep.SweepJob` spec behind a result.

    ``JobResult`` carries its job; a ``RunResult`` (from ``api.simulate``)
    is reconstructed from its workload and mode so both record the same
    ``job``/``config_digest`` for the same configuration.
    """
    from repro.harness.sweep import SweepJob

    job = getattr(result, "job", None)
    if job is not None:
        return job
    workload = result.workload
    return SweepJob(scene=workload.scene_name, mode=result.mode,
                    preset=workload.preset.name,
                    ray_kind=workload.ray_kind, seed=seed)


def run_record(result, *, source: str, wall_seconds: float | None = None,
               seed: int = 0, cwd: str | pathlib.Path | None = None,
               job=None) -> dict:
    """Build one ``repro-results/1`` ``run`` record from a completed result.

    ``result`` is a :class:`~repro.harness.sweep.JobResult` or a
    :class:`~repro.harness.runner.RunResult`; ``wall_seconds`` overrides
    the wall clock for result types that do not carry one (``RunResult``).
    ``job`` supplies the :class:`~repro.harness.sweep.SweepJob` spec for
    result types that do not carry one either — a caller that knows the
    full run configuration (``api.simulate`` knows ``max_cycles``,
    ``executor``, ...) must pass it so the recorded ``config_digest``
    matches the sweep path's for the same configuration.
    """
    if job is None:
        job = _job_for(result, seed=seed)
    wall = getattr(result, "wall_seconds", None) if wall_seconds is None \
        else wall_seconds
    stats = result.stats
    num_rays = getattr(result, "num_rays", None)
    if num_rays is None:
        num_rays = result.workload.num_rays
    rev, dirty = git_provenance(cwd)
    timestamp = datetime.datetime.now(datetime.timezone.utc) \
        .isoformat(timespec="seconds")
    return {
        "schema": RESULTS_SCHEMA,
        "kind": "run",
        "key": list(job.key),
        "job": asdict(job),
        "config_digest": job.config_digest(),
        "run_stats_digest": stats_fingerprint(stats),
        "metrics": {
            "cycles": int(stats.cycles),
            "rays_completed": int(stats.rays_completed),
            "num_rays": int(num_rays),
            "ipc": round(float(result.ipc), 6),
            "simt_efficiency": round(float(result.simt_efficiency), 6),
            "rays_per_second": round(float(result.rays_per_second), 3),
            "verified": bool(result.verify()),
        },
        "timing": {
            "wall_seconds": None if wall is None else round(float(wall), 6),
            "cycles_per_second": (
                None if not wall else round(stats.cycles / float(wall), 3)),
        },
        "provenance": {
            "git_rev": rev,
            "dirty": dirty,
            "timestamp": timestamp,
            "source": str(source),
        },
    }


class ResultsStore:
    """Append-only JSONL store of completed-run records.

    ``directory`` holds one ``results.jsonl``; :meth:`append` publishes a
    record as a single ``O_APPEND`` line, :meth:`load` returns every
    usable record in file order (torn or foreign lines are skipped,
    never fatal).
    """

    def __init__(self, directory: str | pathlib.Path):
        self.directory = pathlib.Path(directory)
        self.path = self.directory / STORE_FILENAME

    def __repr__(self) -> str:
        return f"ResultsStore({str(self.path)!r})"

    def append(self, record: dict) -> dict:
        """Append one record (a dict, or a result via :func:`run_record`)."""
        if record.get("schema") != RESULTS_SCHEMA:
            raise ConfigError(
                f"results store records must carry schema="
                f"{RESULTS_SCHEMA!r}, got {record.get('schema')!r}")
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
        return record

    def record(self, result, *, source: str,
               wall_seconds: float | None = None, seed: int = 0,
               cwd: str | pathlib.Path | None = None, job=None) -> dict:
        """Build and append the record for one completed result."""
        return self.append(run_record(result, source=source,
                                      wall_seconds=wall_seconds, seed=seed,
                                      cwd=cwd, job=job))

    def load(self) -> list[dict]:
        """Every usable ``run`` record in file (append) order."""
        if not self.path.exists():
            return []
        records = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail line from an interrupted writer
            if not isinstance(record, dict) \
                    or record.get("schema") != RESULTS_SCHEMA \
                    or record.get("kind") != "run":
                continue
            records.append(record)
        return records

    def __len__(self) -> int:
        return len(self.load())


def default_store() -> ResultsStore | None:
    """The ``REPRO_RESULTS_DIR`` store, or ``None`` when recording is off.

    The directory is created (and checked writable) eagerly — a sweep must
    not run for minutes and then fail on its first record append. The env
    value is resolved against the CWD once per process, so relative paths
    stay pinned even if a worker later changes directory.
    """
    raw = os.environ.get("REPRO_RESULTS_DIR")
    if not raw:
        return None
    directory = resolve_env_dir("REPRO_RESULTS_DIR", raw)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise ConfigError(
            f"REPRO_RESULTS_DIR={raw!r} cannot be created: {exc}") from None
    if not os.access(directory, os.W_OK):
        raise ConfigError(f"REPRO_RESULTS_DIR={raw!r} is not writable")
    return ResultsStore(directory)


def maybe_record(result, *, source: str, wall_seconds: float | None = None,
                 seed: int = 0, job=None) -> dict | None:
    """Record ``result`` into the ``REPRO_RESULTS_DIR`` store, if opted in.

    The one hook every execution path calls: a no-op (returns ``None``)
    unless ``REPRO_RESULTS_DIR`` is set, so runs without the env variable
    stay byte-for-byte unaffected.
    """
    store = default_store()
    if store is None:
        return None
    return store.record(result, source=source, wall_seconds=wall_seconds,
                        seed=seed, job=job)


__all__ = [
    "RESULTS_SCHEMA",
    "STORE_FILENAME",
    "ResultsStore",
    "default_store",
    "git_provenance",
    "maybe_record",
    "run_record",
    "stats_fingerprint",
]
