"""Clean-vs-dirty upsert rules for per-revision history lists.

The ``BENCH_*`` files keep a ``history`` section — one entry per
``(git_rev, preset)`` recording that revision's measured throughput. The
original dedup rule ("new entry replaces any entry with the same
identity") had a trap: refreshing the bench from a *dirty* working tree
silently overwrote the committed revision's honest point with numbers no
checkout can reproduce. These rules close that hole:

- every entry carries ``dirty`` (``git status --porcelain`` non-empty at
  measurement time); legacy entries without the flag are treated clean —
  they were committed to the repo, which is the best provenance we have;
- a **clean** entry replaces any previous entry for its identity (the
  committed revision's number is authoritative);
- a **dirty** entry may replace a previous *dirty* entry for its identity
  but never a clean one — it is appended alongside, so a work-in-progress
  measurement is visible without destroying the honest point.

Shared between :mod:`benchmarks.bench_simulator_speed` (writing
``BENCH_simulator_speed.json``) and anything else that keeps a
per-revision trajectory.
"""

from __future__ import annotations

__all__ = ["entry_identity", "is_dirty_entry", "upsert_history"]


def entry_identity(entry: dict) -> tuple:
    """The dedup identity of a history entry: ``(git_rev, preset)``."""
    return (entry.get("git_rev"), entry.get("preset"))


def is_dirty_entry(entry: dict) -> bool:
    """Whether an entry was measured on a dirty tree.

    Entries predating the ``dirty`` flag are treated clean: they were
    committed alongside the revision they describe.
    """
    return bool(entry.get("dirty", False))


def upsert_history(history: list[dict], entry: dict) -> list[dict]:
    """Insert ``entry`` into ``history`` under the clean-vs-dirty rules.

    Mutates and returns ``history``. The new entry always lands at the
    end; which same-identity predecessors it displaces depends on its
    ``dirty`` flag (see module docstring).
    """
    identity = entry_identity(entry)
    if is_dirty_entry(entry):
        keep = [item for item in history
                if entry_identity(item) != identity or not is_dirty_entry(item)]
    else:
        keep = [item for item in history if entry_identity(item) != identity]
    history[:] = keep
    history.append(entry)
    return history
