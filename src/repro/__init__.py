"""Dynamic µ-kernels for SIMT global rendering (MICRO 2010 reproduction).

Top-level convenience exports; see the subpackages for the full API:

- :mod:`repro.config` — machine configuration (paper Table I),
- :mod:`repro.isa` — the PTX-flavoured ISA, assembler, CFG analysis,
- :mod:`repro.simt` — the cycle-level SIMT simulator + spawn hardware,
- :mod:`repro.rt` — ray-tracing substrate (kd-tree, Wald, scenes),
- :mod:`repro.kernels` — the benchmark kernels and memory layout,
- :mod:`repro.analysis` — divergence breakdowns, bandwidth model,
- :mod:`repro.harness` — presets, runner, per-figure experiments.
"""

from repro.config import GPUConfig, paper_config, scaled_config
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "GPUConfig",
    "ReproError",
    "__version__",
    "paper_config",
    "scaled_config",
]
