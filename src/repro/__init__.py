"""Dynamic µ-kernels for SIMT global rendering (MICRO 2010 reproduction).

Top-level convenience exports; see the subpackages for the full API:

- :mod:`repro.config` — machine configuration (paper Table I),
- :mod:`repro.isa` — the PTX-flavoured ISA, assembler, CFG analysis,
- :mod:`repro.simt` — the cycle-level SIMT simulator + spawn hardware,
- :mod:`repro.rt` — ray-tracing substrate (kd-tree, Wald, scenes),
- :mod:`repro.kernels` — the benchmark kernels and memory layout,
- :mod:`repro.analysis` — divergence breakdowns, bandwidth model,
- :mod:`repro.obs` — cycle-attribution probes and trace exporters,
- :mod:`repro.harness` — presets, runner, per-figure experiments,
- :mod:`repro.api` — the stable façade (``simulate``/``sweep``),
- :mod:`repro.serve` — the job daemon, wire schema, and sharded sweeps.
"""

from repro.config import GPUConfig, paper_config, scaled_config
from repro.errors import ReproError

__version__ = "1.0.0"

#: Façade names resolved lazily (PEP 562) so ``import repro`` stays cheap
#: and free of the harness's heavier imports until they are needed.
_API_EXPORTS = ("simulate", "sweep", "RunResult", "SweepJob", "SweepResults",
                "RetryPolicy", "FailedJob", "SweepCheckpoint",
                "TraceSession", "MODES")


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from repro import api
        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + list(_API_EXPORTS))


__all__ = [
    "FailedJob",
    "GPUConfig",
    "MODES",
    "ReproError",
    "RetryPolicy",
    "RunResult",
    "SweepCheckpoint",
    "SweepJob",
    "SweepResults",
    "TraceSession",
    "__version__",
    "paper_config",
    "scaled_config",
    "simulate",
    "sweep",
]
