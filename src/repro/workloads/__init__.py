"""Non-rendering workload generators (graphs today; more families later).

The spawn mechanism the paper describes is workload-agnostic; this package
holds the procedural generators for the irregular, non-graphics workloads
that exercise it — starting with seeded CSR graphs for the BFS kernel
family (:mod:`repro.workloads.graphs`).
"""

from repro.workloads.graphs import (
    GRAPH_SCENES,
    GraphWorkload,
    is_graph_scene,
    make_graph,
    reference_bfs,
)

__all__ = [
    "GRAPH_SCENES",
    "GraphWorkload",
    "is_graph_scene",
    "make_graph",
    "reference_bfs",
]
