"""Seeded procedural CSR graphs for the BFS kernel family.

Two archetypes with controlled skew (the knob the dynamic-parallelism
literature cares about — frontier expansion cost per vertex):

- ``graph-uniform`` — every vertex has a small out-degree drawn from a
  narrow band; frontiers grow smoothly and per-vertex work is balanced.
- ``graph-skew`` — a power-law-flavoured graph: a handful of hub vertices
  own a large fraction of the edges and most targets concentrate on
  low-numbered vertices, so one lane's frontier expansion can be orders of
  magnitude larger than its warp-mates' — the divergence shape BFS is
  famous for.

Vertex count scales with the preset's ``scene_detail`` exactly like the
triangle counts of the procedural scenes do, so ``tiny``/``fast``/``paper``
presets carry over unchanged. All randomness flows from one
:class:`numpy.random.Generator` derived from ``(name, detail, seed)``, so a
graph is reproducible from its workload-cache key alone.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.errors import SceneError

#: Graph scene names the generator accepts (the BFS analogue of
#: :data:`repro.rt.BENCHMARK_SCENES`).
GRAPH_SCENES = ("graph-uniform", "graph-skew")

#: Vertices at detail=1.0; presets scale this like triangle counts.
_BASE_VERTICES = 1024

#: Distinct BFS roots per workload (clamped to the vertex count).
_NUM_SOURCES = 2


@dataclass(frozen=True)
class GraphWorkload:
    """A CSR adjacency structure plus the BFS roots."""

    name: str
    indptr: np.ndarray    # int64, num_vertices + 1
    indices: np.ndarray   # int64, num_edges
    sources: np.ndarray   # int64, distinct roots

    @property
    def num_vertices(self) -> int:
        return int(self.indptr.shape[0] - 1)

    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0])

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.indptr)


def is_graph_scene(name: str) -> bool:
    return name in GRAPH_SCENES


def _degree_profile(name: str, num_vertices: int,
                    rng: np.random.Generator) -> np.ndarray:
    if name == "graph-uniform":
        return rng.integers(2, 6, size=num_vertices)
    # graph-skew: a few hubs with O(V/16) out-degree over a sparse base.
    degrees = rng.integers(1, 4, size=num_vertices)
    num_hubs = max(2, num_vertices // 64)
    hubs = rng.choice(num_vertices, size=num_hubs, replace=False)
    degrees[hubs] = rng.integers(num_vertices // 32 + 2,
                                 num_vertices // 16 + 3, size=num_hubs)
    return degrees


def _targets(name: str, num_vertices: int, count: int,
             rng: np.random.Generator) -> np.ndarray:
    if name == "graph-uniform":
        return rng.integers(0, num_vertices, size=count)
    # graph-skew: cubing a uniform draw concentrates in-degree on
    # low-numbered vertices (a cheap preferential-attachment stand-in).
    u = rng.random(count)
    return np.minimum((u ** 3 * num_vertices).astype(np.int64),
                      num_vertices - 1)


def make_graph(name: str, detail: float = 1.0, seed: int = 0
               ) -> GraphWorkload:
    """Generate one seeded CSR graph workload."""
    if name not in GRAPH_SCENES:
        raise SceneError(
            f"unknown graph scene {name!r}; expected one of {GRAPH_SCENES}")
    num_vertices = max(64, int(round(_BASE_VERTICES * float(detail))))
    # zlib.crc32, not hash(): str hashing is salted per process and the
    # graph must be reproducible across sweep workers.
    rng = np.random.default_rng(
        np.random.SeedSequence([zlib.crc32(name.encode()),
                                int(round(detail * 1024)), int(seed)]))
    degrees = _degree_profile(name, num_vertices, rng).astype(np.int64)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(degrees, out=indptr[1:])
    indices = _targets(name, num_vertices, int(indptr[-1]), rng)
    indices = indices.astype(np.int64)
    num_sources = min(_NUM_SOURCES, num_vertices)
    sources = np.sort(rng.choice(num_vertices, size=num_sources,
                                 replace=False)).astype(np.int64)
    return GraphWorkload(name=name, indptr=indptr, indices=indices,
                         sources=sources)


def reference_bfs(graph: GraphWorkload) -> np.ndarray:
    """True multi-source BFS levels (int64; -1 marks unreachable).

    The reference oracle for the SIMT kernels: the *reachable set* is
    schedule-independent (any correct traversal visits exactly these
    vertices) and the true level is a lower bound on any level a relaxed
    lock-free traversal can assign.
    """
    levels = np.full(graph.num_vertices, -1, dtype=np.int64)
    frontier = [int(v) for v in graph.sources]
    for v in frontier:
        levels[v] = 0
    depth = 0
    while frontier:
        depth += 1
        next_frontier = []
        for v in frontier:
            for slot in range(int(graph.indptr[v]), int(graph.indptr[v + 1])):
                w = int(graph.indices[slot])
                if levels[w] < 0:
                    levels[w] = depth
                    next_frontier.append(w)
        frontier = next_frontier
    return levels
