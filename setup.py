"""Setup shim: enables legacy editable installs in offline environments
where the `wheel` package is unavailable (pip falls back to
`setup.py develop` when invoked with --no-use-pep517)."""
from setuptools import setup

setup()
