"""Author your own dynamic µ-kernel pipeline on the public ISA.

The paper's spawn mechanism is not ray-tracing specific: any kernel whose
divergence comes from data-dependent loop trip counts can be restructured
into µ-kernels. This example implements a Collatz-length kernel two ways —
a PDOM loop and a spawn chain — and compares lane occupancy, mirroring the
paper's Example 2 programming model (state save, spawn, exit).

Run:  python examples/custom_microkernel.py
"""

from __future__ import annotations

import numpy as np

from repro.config import scaled_config
from repro.isa import assemble
from repro.simt import GPU, GlobalMemory, LaunchSpec

NUM_THREADS = 256

# Traditional version: the data-dependent while-loop diverges the warp.
PDOM_SOURCE = """
.kernel collatz regs=8
collatz:
    mov r0, SREG.tid;
    ld.global r1, [r0+0];      # n
    mov r2, 0;                 # steps
LOOP:
    setp.le p0, r1, 1;
    @p0 bra DONE;
    rem r3, r1, 2;
    setp.eq p1, r3, 0;
    div r4, r1, 2;
    floor r4, r4;
    mul r5, r1, 3;
    add r5, r5, 1;
    selp r1, r4, r5, p1;       # n = even ? n/2 : 3n+1
    add r2, r2, 1;
    bra LOOP;
DONE:
    add r6, r0, 512;
    st.global [r6+0], r2;
    exit;
"""

# µ-kernel version: each iteration is a spawned thread; threads at the
# same iteration regroup into fresh, fully-populated warps.
SPAWN_SOURCE = """
.kernel collatz_start regs=8 state=4
.kernel collatz_step regs=8 state=4
collatz_start:
    mov r6, SREG.spawnMemAddr;
    mov r0, SREG.tid;
    ld.global r1, [r0+0];
    mov r2, 0;
    st.spawn [r6+0], r1;
    st.spawn [r6+1], r2;
    st.spawn [r6+2], r0;
    spawn $collatz_step, r6;
    exit;
collatz_step:
    mov r7, SREG.spawnMemAddr;
    ld.spawn r6, [r7+0];       # follow warp-formation pointer
    ld.spawn r1, [r6+0];
    ld.spawn r2, [r6+1];
    ld.spawn r0, [r6+2];
    setp.le p0, r1, 1;
    @p0 bra STEP_DONE;
    rem r3, r1, 2;
    setp.eq p1, r3, 0;
    div r4, r1, 2;
    floor r4, r4;
    mul r5, r1, 3;
    add r5, r5, 1;
    selp r1, r4, r5, p1;
    add r2, r2, 1;
    st.spawn [r6+0], r1;
    st.spawn [r6+1], r2;
    spawn $collatz_step, r6;
    exit;
STEP_DONE:
    add r3, r0, 512;
    st.global [r3+0], r2;
    exit;
"""


def collatz_length(n: int) -> int:
    steps = 0
    while n > 1:
        n = n // 2 if n % 2 == 0 else 3 * n + 1
        steps += 1
    return steps


def run(source: str, entry: str, spawn: bool):
    program = assemble(source)
    memory = GlobalMemory(1024)
    values = np.arange(3, 3 + NUM_THREADS)
    memory.load_array(0, values.astype(float))
    memory.set_result_range(512, NUM_THREADS, stride=1)
    config = scaled_config(1, spawn_enabled=spawn, max_cycles=5_000_000)
    launch = LaunchSpec(program=program, entry_kernel=entry,
                        num_threads=NUM_THREADS, registers_per_thread=8,
                        block_size=32, state_words=4 if spawn else 0)
    gpu = GPU(config, launch, memory)
    stats = gpu.run()
    return stats, memory.words[512:512 + NUM_THREADS], values


def main() -> None:
    expected = np.array([collatz_length(n) for n in range(3, 3 + NUM_THREADS)],
                        dtype=float)
    for label, source, entry, spawn in (
            ("PDOM loop", PDOM_SOURCE, "collatz", False),
            ("dynamic µ-kernels", SPAWN_SOURCE, "collatz_start", True)):
        stats, results, values = run(source, entry, spawn)
        correct = np.array_equal(results, expected)
        print(f"{label}:")
        print(f"  cycles={stats.cycles}  IPC={stats.ipc:.1f}  "
              f"efficiency={stats.simt_efficiency:.2f}  correct={correct}")
        if spawn:
            print(f"  threads spawned={stats.sm_stats.threads_spawned}  "
                  f"full warps formed={stats.sm_stats.full_warps_formed}")
        print()


if __name__ == "__main__":
    main()
