"""Shadow rays: the paper's first global-rendering use case (§III-A).

Traces primary rays on the simulated GPU, generates one shadow ray per hit
toward the scene light, traces the shadow batch on the simulator too, and
writes a shaded image with hard shadows. Secondary rays are less coherent
than primary rays, so this also shows how much more lane occupancy dynamic
µ-kernels recover on the shadow pass.

Run:  python examples/shadow_rays.py
"""

from __future__ import annotations

import numpy as np

from repro.config import scaled_config
from repro.kernels import build_memory_image, microkernel_launch_spec, traditional_launch_spec
from repro.rt import Camera, build_kdtree, make_scene, shadow_rays, trace_rays
from repro.rt.image import shade_hits
from repro.simt import GPU

WIDTH, HEIGHT = 40, 40


def run_on_gpu(tree, origins, directions, t_max, *, use_micro: bool,
               max_cycles=40_000_000):
    image = build_memory_image(tree, origins, directions, t_max)
    if use_micro:
        config = scaled_config(1, spawn_enabled=True, max_cycles=max_cycles)
        launch = microkernel_launch_spec(origins.shape[0])
    else:
        config = scaled_config(1, max_cycles=max_cycles)
        launch = traditional_launch_spec(origins.shape[0])
    gpu = GPU(config, launch, image.global_mem, image.const_mem)
    stats = gpu.run()
    t, triangle = image.results()
    return stats, t, triangle


def main() -> None:
    scene = make_scene("conference", detail=0.5)
    tree = build_kdtree(scene.triangles, max_depth=13, leaf_size=8)
    camera = Camera.for_scene(scene)
    origins, directions = camera.primary_rays(WIDTH, HEIGHT)

    print("pass 1: primary rays (traditional kernel)")
    stats, t, triangle = run_on_gpu(tree, origins, directions, np.inf,
                                    use_micro=False)
    print(f"  efficiency={stats.simt_efficiency:.2f} "
          f"hits={int((triangle >= 0).sum())}/{triangle.size}")

    batch = shadow_rays(scene.triangles, triangle, t, origins, directions,
                        scene.light)
    reference = trace_rays(tree, batch.origins, batch.directions, batch.t_max)

    print("pass 2: shadow rays, PDOM vs dynamic µ-kernels")
    results = {}
    for label, use_micro in (("pdom", False), ("spawn", True)):
        shadow_stats, shadow_t, shadow_tri = run_on_gpu(
            tree, batch.origins, batch.directions, batch.t_max,
            use_micro=use_micro)
        correct = np.array_equal(shadow_tri, reference.triangle)
        results[label] = shadow_stats
        print(f"  {label:5s}: efficiency={shadow_stats.simt_efficiency:.2f} "
              f"IPC={shadow_stats.ipc:.1f} verified={correct}")
    gain = (results["spawn"].simt_efficiency
            / max(results["pdom"].simt_efficiency, 1e-9))
    print(f"  µ-kernel occupancy gain on the shadow pass: {gain:.2f}x")

    shadowed = reference.triangle >= 0
    frame = shade_hits(WIDTH, HEIGHT, scene.triangles, triangle, t,
                       directions, shadowed=shadowed)
    frame.write_ppm("shadows.ppm")
    print("wrote shadows.ppm")


if __name__ == "__main__":
    main()
