"""Divergence study: reproduce the paper's Figure 3 vs Figure 7 contrast.

Runs the conference benchmark under traditional PDOM branching and under
dynamic µ-kernels (with and without spawn-memory bank conflicts), then
prints the warp-occupancy breakdowns side by side — the terminal analogue
of the paper's AerialVision plots.

Run:  python examples/divergence_study.py [scene]
"""

from __future__ import annotations

import sys

from repro.analysis.divergence import breakdown_from_stats, render_breakdown
from repro.api import prepare_workload, simulate
from repro.harness.presets import SimPreset

PRESET = SimPreset(name="study", num_sms=1, image_width=32, image_height=32,
                   scene_detail=0.4, kd_max_depth=12, kd_leaf_size=8,
                   max_cycles=200_000, divergence_window=2_000)


def main() -> None:
    scene = sys.argv[1] if len(sys.argv) > 1 else "conference"
    workload = prepare_workload(scene, PRESET)
    print(f"scene: {scene}, {len(workload.tree.triangles)} triangles, "
          f"{workload.num_rays} rays, first {PRESET.max_cycles} cycles\n")

    sections = []
    for title, mode in (
            ("Figure 3 — traditional PDOM branching", "pdom_block"),
            ("Figure 7 — dynamic µ-kernels (conflict-free)", "spawn"),
            ("Figure 9 — dynamic µ-kernels (bank conflicts)",
             "spawn_conflicts")):
        result = simulate(workload, mode)
        breakdown = breakdown_from_stats(result.stats)
        sections.append((title, result, breakdown))
        print(title)
        print(render_breakdown(breakdown))
        print(f"IPC={result.ipc:.1f}  efficiency="
              f"{result.simt_efficiency:.2f}  verified={result.verify()}\n")

    pdom = sections[0][1]
    spawn = sections[1][1]
    conflicts = sections[2][1]
    print("summary (paper values for the full-size machine in parens):")
    print(f"  spawn / PDOM IPC ratio:     {spawn.ipc / pdom.ipc:.2f}x (1.9x)")
    print(f"  conflicts / PDOM IPC ratio: "
          f"{conflicts.ipc / pdom.ipc:.2f}x (1.3x)")


if __name__ == "__main__":
    main()
