"""Quickstart: render a scene on the simulated SIMT machine.

Builds the conference-like benchmark scene, traces one frame of primary
rays twice — with the traditional PDOM kernel and with dynamic µ-kernels —
verifies both against the scalar reference tracer, writes a PPM image, and
prints the metrics the paper reports (IPC, SIMT efficiency, Mrays/s).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.config import scaled_config
from repro.kernels import (
    build_memory_image,
    microkernel_launch_spec,
    traditional_launch_spec,
)
from repro.rt import Camera, build_kdtree, make_scene, trace_rays
from repro.rt.image import shade_hits
from repro.simt import GPU

WIDTH, HEIGHT = 48, 48


def simulate(tree, origins, directions, *, use_microkernels: bool,
             max_cycles: int = 300_000):
    """One frame on a single simulated SM; returns (stats, t, triangle).

    Like the paper, only the first ``max_cycles`` cycles are simulated and
    rays/s comes from the rays completed inside that window; rays still in
    flight leave NaN sentinels in the result region.
    """
    image = build_memory_image(tree, origins, directions)
    if use_microkernels:
        config = scaled_config(1, spawn_enabled=True, max_cycles=max_cycles)
        launch = microkernel_launch_spec(origins.shape[0])
    else:
        config = scaled_config(1, max_cycles=max_cycles)
        launch = traditional_launch_spec(origins.shape[0])
    gpu = GPU(config, launch, image.global_mem, image.const_mem)
    stats = gpu.run()
    t, triangle = image.results()
    return stats, t, triangle


def main() -> None:
    scene = make_scene("conference", detail=0.5)
    tree = build_kdtree(scene.triangles, max_depth=13, leaf_size=8)
    camera = Camera.for_scene(scene)
    origins, directions = camera.primary_rays(WIDTH, HEIGHT)
    print(f"scene: {scene.name}, {scene.num_triangles} triangles, "
          f"kd-tree: {tree.num_nodes} nodes")

    reference = trace_rays(tree, origins, directions)
    print(f"reference: {int(reference.hit_mask.sum())}/{reference.num_rays} "
          f"rays hit geometry")

    for label, use_micro in (("PDOM (traditional)", False),
                             ("dynamic µ-kernels", True)):
        stats, t, triangle = simulate(tree, origins, directions,
                                      use_microkernels=use_micro)
        done = ~np.isnan(t)
        matches = np.array_equal(triangle[done], reference.triangle[done])
        print(f"\n{label} (first {stats.cycles} cycles):")
        print(f"  IPC               {stats.ipc:.1f}")
        print(f"  SIMT efficiency   {stats.simt_efficiency:.2f}")
        print(f"  rays completed    {stats.rays_completed}/{origins.shape[0]}")
        print(f"  Mrays/s (30 SMs)  {stats.rays_per_second(30) / 1e6:.1f}")
        print(f"  matches reference {matches}")

    frame = shade_hits(WIDTH, HEIGHT, scene.triangles, reference.triangle,
                       reference.t, directions)
    frame.write_ppm("quickstart.ppm")
    print("\nwrote quickstart.ppm")


if __name__ == "__main__":
    main()
